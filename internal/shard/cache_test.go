package shard

import "testing"

// ins admits a 1-byte fp32-width entry: with uniform unit entries a byte
// budget of N behaves exactly like the old N-entry cache, so the legacy
// replacement-policy tests keep their shape.
func ins(c *DeviceCache, k uint64) (bool, int) { return c.Insert(k, WidthFP32, 1) }

func hit(c *DeviceCache, k uint64) bool { _, ok := c.Lookup(k); return ok }

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := NewDeviceCache(2, PolicyLRU)
	ins(c, 1)
	ins(c, 2)
	if !hit(c, 1) { // 1 becomes most recent
		t.Fatal("1 must be cached")
	}
	if _, ev := ins(c, 3); ev != 1 {
		t.Fatalf("full cache must evict once, evicted %d", ev)
	}
	if c.Contains(2) {
		t.Fatal("LRU victim must be 2")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Fatal("1 and 3 must survive")
	}
	if c.Evicts != 1 || c.Inserts != 3 {
		t.Fatalf("counters: evicts=%d inserts=%d", c.Evicts, c.Inserts)
	}
}

func TestSRRIPKeepsReReferencedEntries(t *testing.T) {
	c := NewDeviceCache(4, PolicySRRIP)
	for k := uint64(1); k <= 4; k++ {
		ins(c, k)
	}
	// Promote 1 and 2 to near re-reference; scan keys 10..17 through.
	c.Lookup(1)
	c.Lookup(2)
	for k := uint64(10); k < 18; k++ {
		ins(c, k)
	}
	// The re-referenced entries should have outlived at least the first
	// wave of scan insertions (scan resistance vs LRU, which would have
	// dropped everything).
	if c.Evicts != 8 {
		t.Fatalf("evicts = %d want 8", c.Evicts)
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d want 4", c.Len())
	}
}

func TestZeroCapacityCacheAlwaysMisses(t *testing.T) {
	c := NewDeviceCache(0, PolicyLRU)
	if ok, _ := ins(c, 1); ok {
		t.Fatal("zero-capacity insert must be a no-op")
	}
	if hit(c, 1) {
		t.Fatal("zero-capacity cache can never hit")
	}
	if c.Misses != 1 || c.Occupancy() != 0 {
		t.Fatalf("counters: misses=%d occ=%g", c.Misses, c.Occupancy())
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := NewDeviceCache(2, PolicyLRU)
	ins(c, 1)
	ins(c, 2)
	ins(c, 1) // refresh, not duplicate
	if c.Len() != 2 {
		t.Fatalf("len = %d want 2", c.Len())
	}
	ins(c, 3) // evicts 2 (1 was refreshed)
	if c.Contains(2) || !c.Contains(1) {
		t.Fatal("refresh must update recency")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewDeviceCache(4, PolicySRRIP)
	for k := uint64(0); k < 8; k++ {
		ins(c, k)
	}
	c.Reset()
	if c.Len() != 0 || c.Hits != 0 || c.Evicts != 0 || c.UsedBytes() != 0 {
		t.Fatal("reset must clear contents and counters")
	}
	ins(c, 42)
	if !c.Contains(42) {
		t.Fatal("cache must be usable after reset")
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewDeviceCache(8, PolicyLRU)
	ins(c, 5)
	c.Lookup(5)
	c.Lookup(6)
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

// TestByteBudgetHoldsMoreNarrowRows is the satellite-1 regression: at the
// same byte budget an int8 warm tier holds >= 2x the fp32 row count, and
// Occupancy keeps byte semantics regardless of the entry mix — both caches
// fill to ~1.0 even though one holds twice the rows.
func TestByteBudgetHoldsMoreNarrowRows(t *testing.T) {
	const dim = 32
	budget := WidthFP32.RowBytes(dim) * 64 // exactly 64 fp32 rows
	fp32 := NewDeviceCache(budget, PolicyLRU)
	i8 := NewDeviceCache(budget, PolicyLRU)
	for k := uint64(0); k < 10_000; k++ {
		fp32.Insert(k, WidthFP32, WidthFP32.RowBytes(dim))
		i8.Insert(k, WidthINT8, WidthINT8.RowBytes(dim))
	}
	if fp32.Len() != 64 {
		t.Fatalf("fp32 rows held = %d, want 64", fp32.Len())
	}
	if i8.Len() < 2*fp32.Len() {
		t.Fatalf("int8 cache holds %d rows at the budget that holds %d fp32 rows; want >= 2x", i8.Len(), fp32.Len())
	}
	if fp32.Occupancy() != 1 {
		t.Fatalf("full fp32 cache occupancy = %g, want 1", fp32.Occupancy())
	}
	if occ := i8.Occupancy(); occ < 0.95 || occ > 1 {
		t.Fatalf("full int8 cache occupancy = %g, want ~1 (same byte semantics)", occ)
	}
	if fp32.UsedBytes() > budget || i8.UsedBytes() > budget {
		t.Fatalf("budget overrun: fp32 %d, int8 %d, budget %d", fp32.UsedBytes(), i8.UsedBytes(), budget)
	}
}

// TestWideInsertEvictsSeveralNarrow checks evict-until-fits accounting: one
// fp32 admission into a cache packed with int8 rows displaces several.
func TestWideInsertEvictsSeveralNarrow(t *testing.T) {
	const dim = 16
	budget := WidthINT8.RowBytes(dim) * 8 // 8 int8 rows, 160 bytes
	c := NewDeviceCache(budget, PolicyLRU)
	for k := uint64(0); k < 8; k++ {
		c.Insert(k, WidthINT8, WidthINT8.RowBytes(dim))
	}
	_, ev := c.Insert(100, WidthFP32, WidthFP32.RowBytes(dim)) // 64 bytes > 3 int8 rows
	if ev < 2 {
		t.Fatalf("wide insert evicted %d narrow rows, want >= 2", ev)
	}
	if int64(ev) != c.Evicts {
		t.Fatalf("returned evictions %d != counter %d", ev, c.Evicts)
	}
	if c.UsedBytes() > budget {
		t.Fatalf("used %d > budget %d after mixed-width eviction", c.UsedBytes(), budget)
	}
	if !c.Contains(100) {
		t.Fatal("wide entry must be admitted")
	}
}

// TestUnfittableEntryRefused: an entry wider than the whole budget is
// refused without evicting anything.
func TestUnfittableEntryRefused(t *testing.T) {
	c := NewDeviceCache(16, PolicyLRU)
	ins(c, 1)
	if ok, ev := c.Insert(2, WidthFP32, 64); ok || ev != 0 {
		t.Fatalf("unfittable insert: admitted=%v evictions=%d, want refusal", ok, ev)
	}
	if !c.Contains(1) {
		t.Fatal("refused insert must not disturb residents")
	}
}

// TestWidthChangeReadmits: re-inserting a resident key at a different width
// replaces the entry (new width served on the next hit) without counting the
// replacement as an eviction.
func TestWidthChangeReadmits(t *testing.T) {
	const dim = 8
	c := NewDeviceCache(WidthFP32.RowBytes(dim)*4, PolicyLRU)
	c.Insert(7, WidthINT8, WidthINT8.RowBytes(dim))
	before := c.UsedBytes()
	c.Insert(7, WidthFP32, WidthFP32.RowBytes(dim))
	if c.Len() != 1 {
		t.Fatalf("len = %d want 1 after width change", c.Len())
	}
	if c.Evicts != 0 {
		t.Fatalf("width change counted %d evictions, want 0", c.Evicts)
	}
	if c.UsedBytes() == before {
		t.Fatal("usedBytes must track the new width")
	}
	if w, ok := c.Lookup(7); !ok || w != WidthFP32 {
		t.Fatalf("Lookup(7) = (%v, %v), want fp32 hit", w, ok)
	}
}

// TestLookupReportsWidthAndQuantHits: hits on narrow entries report their
// width and bump the QuantHits counter; fp32 hits do not.
func TestLookupReportsWidthAndQuantHits(t *testing.T) {
	c := NewDeviceCache(1024, PolicyLRU)
	c.Insert(1, WidthFP32, 64)
	c.Insert(2, WidthINT8, 20)
	c.Insert(3, WidthFP16, 32)
	if w, ok := c.Lookup(2); !ok || w != WidthINT8 {
		t.Fatalf("Lookup(2) = (%v, %v)", w, ok)
	}
	if w, ok := c.Lookup(3); !ok || w != WidthFP16 {
		t.Fatalf("Lookup(3) = (%v, %v)", w, ok)
	}
	if w, ok := c.Lookup(1); !ok || w != WidthFP32 {
		t.Fatalf("Lookup(1) = (%v, %v)", w, ok)
	}
	if c.QuantHits != 2 || c.Hits != 3 {
		t.Fatalf("quantHits=%d hits=%d, want 2/3", c.QuantHits, c.Hits)
	}
}

// TestSRRIPSweepSkipsRecycledSlots: mixed-width eviction leaves holes in the
// slot table; the CLOCK sweep must keep terminating and selecting victims.
func TestSRRIPSweepSkipsRecycledSlots(t *testing.T) {
	const dim = 16
	budget := WidthINT8.RowBytes(dim) * 12
	c := NewDeviceCache(budget, PolicySRRIP)
	for k := uint64(0); k < 12; k++ {
		c.Insert(k, WidthINT8, WidthINT8.RowBytes(dim))
	}
	// Wide inserts punch multi-slot holes; follow with narrow refills.
	for round := uint64(0); round < 20; round++ {
		c.Insert(100+round, WidthFP32, WidthFP32.RowBytes(dim))
		c.Insert(200+round, WidthINT8, WidthINT8.RowBytes(dim))
	}
	if c.UsedBytes() > budget {
		t.Fatalf("used %d > budget %d", c.UsedBytes(), budget)
	}
	if c.Len() == 0 {
		t.Fatal("cache must still hold entries")
	}
	// Every resident key must still hit.
	hits := 0
	for k := uint64(0); k < 300; k++ {
		if c.Contains(k) {
			if !hit(c, k) {
				t.Fatalf("resident key %d must hit", k)
			}
			hits++
		}
	}
	if hits != c.Len() {
		t.Fatalf("resident sweep found %d keys, Len reports %d", hits, c.Len())
	}
}
