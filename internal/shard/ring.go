package shard

import "sync"

// PrefetchRing pools the plan/staging/handle triples of a prefetch pipeline
// so the steady-state path allocates nothing: a depth-k pipeline cycles
// through at most k windows per table, and the ring grows once to that peak
// and is then reused verbatim. It generalises the two-deep window ring the
// cross-iteration pipeline started with — the ring itself has no depth
// limit; the executor's lookahead decides how many windows are in flight.
//
// The ring is safe for concurrent use (acquire under one mutex, release
// under the same), but individual plans/stagings/handles are owned by
// exactly one window between acquire and release.
type PrefetchRing struct {
	mu       sync.Mutex
	plans    []*GatherPlan
	stagings []*Staging
	handles  []*Handle
}

// NewPrefetchRing returns an empty ring.
func NewPrefetchRing() *PrefetchRing { return &PrefetchRing{} }

// Plan hands out a recycled (or new) plan reset for a window over `nodes`
// owner nodes.
func (r *PrefetchRing) Plan(table, nodes int) *GatherPlan {
	r.mu.Lock()
	n := len(r.plans)
	if n == 0 {
		r.mu.Unlock()
		return newGatherPlan(table, nodes)
	}
	p := r.plans[n-1]
	r.plans = r.plans[:n-1]
	r.mu.Unlock()
	p.reset(table, nodes)
	return p
}

// Staging binds a recycled (or new) staging buffer to a plan. The staging
// shares the plan's slot map and is recycled together with it.
func (r *PrefetchRing) Staging(plan *GatherPlan, dim int) *Staging {
	need := len(plan.slot) * dim
	r.mu.Lock()
	n := len(r.stagings)
	var st *Staging
	if n > 0 {
		st = r.stagings[n-1]
		r.stagings = r.stagings[:n-1]
	}
	r.mu.Unlock()
	if st == nil {
		st = &Staging{}
	}
	if cap(st.buf) < need {
		st.buf = make([]float32, need)
	}
	st.buf = st.buf[:need]
	if len(plan.quant) > 0 {
		// Size the per-slot width table only for windows that stage warm-tier
		// hits; everything defaults to fp32 and fillQuant marks its slots.
		n := len(plan.slot)
		if cap(st.widths) < n {
			st.widths = make([]Width, n)
		}
		st.widths = st.widths[:n]
		clear(st.widths)
	} else {
		st.widths = st.widths[:0]
	}
	st.dim = dim
	st.slot = plan.slot
	st.plan = plan
	return st
}

// Handle hands out a recycled (or new) handle with its cond initialised.
func (r *PrefetchRing) Handle() *Handle {
	r.mu.Lock()
	n := len(r.handles)
	var h *Handle
	if n > 0 {
		h = r.handles[n-1]
		r.handles = r.handles[:n-1]
	}
	r.mu.Unlock()
	if h == nil {
		h = &Handle{}
		h.cond.L = &h.mu
	}
	return h
}

// ReleaseStaging recycles a consumed staging and the plan whose slot map it
// shares. Callers must not touch the staging (or any row slice obtained from
// Lookup) afterwards.
func (r *PrefetchRing) ReleaseStaging(st *Staging) {
	if st == nil {
		return
	}
	plan := st.plan
	st.plan = nil
	st.slot = nil
	r.mu.Lock()
	r.stagings = append(r.stagings, st)
	if plan != nil {
		r.plans = append(r.plans, plan)
	}
	r.mu.Unlock()
}

// ReleaseHandle recycles a completed handle (after Await).
func (r *PrefetchRing) ReleaseHandle(h *Handle) {
	h.staging = nil
	h.g = nil
	r.mu.Lock()
	r.handles = append(r.handles, h)
	r.mu.Unlock()
}
