//hotline:typed-errors

package shard

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hotline/internal/tensor"
)

// FabricTimeouts splits the fabric's time budget into the three places a
// socket fabric can stall, each with a documented non-zero default (a zero
// field selects its default, so the zero value is a fully bounded fabric —
// no knob setting can make a dial or an exchange wait forever).
type FabricTimeouts struct {
	// Dial bounds every connection attempt (initial fabric dial and every
	// re-dial of a dead peer). Default DefaultDialTimeout.
	Dial time.Duration
	// IO bounds each request/response operation on a live connection. The
	// deadline is armed per write and re-armed per read, so a peer that
	// turns slow mid-frame cannot ride a stale deadline from the previous
	// operation. Default DefaultIOTimeout.
	IO time.Duration
	// Retry bounds the total wall clock a ResilientTransport spends
	// retrying and re-dialing one dead peer before declaring it
	// unrecoverable (the point where shard adoption takes over). Default
	// DefaultRetryTimeout.
	Retry time.Duration
}

// Fabric timeout defaults. A zero FabricTimeouts field selects its default.
const (
	DefaultDialTimeout  = 5 * time.Second
	DefaultIOTimeout    = 10 * time.Second
	DefaultRetryTimeout = 30 * time.Second
)

// DefaultFabricTimeout is the historical single-knob default, kept as the
// per-operation (IO) bound.
const DefaultFabricTimeout = DefaultIOTimeout

// Validate rejects negative budgets (zero means "use the default").
func (t FabricTimeouts) Validate() error {
	if t.Dial < 0 || t.IO < 0 || t.Retry < 0 {
		return fmt.Errorf("%w: negative timeout in %+v", ErrFabricConfig, t)
	}
	return nil
}

// WithDefaults returns the timeouts with every zero field replaced by its
// documented default.
func (t FabricTimeouts) WithDefaults() FabricTimeouts {
	if t.Dial == 0 {
		t.Dial = DefaultDialTimeout
	}
	if t.IO == 0 {
		t.IO = DefaultIOTimeout
	}
	if t.Retry == 0 {
		t.Retry = DefaultRetryTimeout
	}
	return t
}

// FabricConfig describes how the coordinator reaches its shard node
// processes.
type FabricConfig struct {
	// Network is "unix" or "tcp".
	Network string
	// Addrs[owner] is the listen address of owner's node process.
	Addrs []string
	// Timeouts bounds dialing, per-operation I/O and the re-dial budget;
	// zero fields select their documented defaults (see FabricTimeouts).
	Timeouts FabricTimeouts
	// WrapConn, when set, wraps each freshly dialed peer connection — the
	// fault-injection seam the conformance suite and the chaos harness use
	// to drop, corrupt, truncate or delay frames. Re-dials are wrapped the
	// same way. Production fabrics leave it nil.
	WrapConn func(owner int, c net.Conn) net.Conn
}

// socketPeer is the coordinator's connection to one node process. A peer is
// strictly request/response and mutex-serialized: the gather drainers, the
// training thread's scatter pushes and the serve path may all address the
// same owner concurrently, and interleaving frames on one conn would corrupt
// the stream. A failed exchange marks the peer dead (sticky): later
// operations fail fast with ErrPeerDead instead of hanging on a broken conn.
// A ResilientTransport can revive a dead peer through redial, which swaps in
// a fresh connection and clears the sticky error.
type socketPeer struct {
	mu   sync.Mutex
	conn net.Conn
	addr string  // current dial address (re-dials may move it, e.g. a restart on a new port)
	err  error   // sticky; nil while healthy
	out  []byte  // encode scratch
	in   []byte  // reply read scratch
	rep  wireMsg // decoded reply, slices reused
}

// SocketTransport is the multi-process fabric: per-owner gather fetch lists
// and pre-reduced scatter pushes travel as wire-protocol frames over one
// socket per node process. Safe for concurrent use; operations against
// distinct owners proceed in parallel.
type SocketTransport struct {
	cfg    FabricConfig
	peers  []*socketPeer
	closed sync.Once
	dead   bool
	mu     sync.Mutex
}

// DialFabric connects to every node process in cfg.Addrs and verifies each
// with a hello exchange, so a mis-wired fabric fails at dial time, not mid-
// training. The caller owns the returned transport and must Close it.
func DialFabric(cfg FabricConfig) (*SocketTransport, error) {
	if err := cfg.Timeouts.Validate(); err != nil {
		return nil, err
	}
	cfg.Timeouts = cfg.Timeouts.WithDefaults()
	t := &SocketTransport{cfg: cfg, peers: make([]*socketPeer, len(cfg.Addrs))}
	for o, addr := range cfg.Addrs {
		t.peers[o] = &socketPeer{addr: addr}
		if err := t.dialPeerLocked(o, t.peers[o]); err != nil {
			t.Close()
			return nil, err
		}
	}
	return t, nil
}

// dialPeerLocked dials (or re-dials) one peer at its current address and
// verifies it with a hello exchange. The caller must guarantee no concurrent
// operation is using the peer (fresh transport, or redialPeer holding the
// resilient layer's write lock).
func (t *SocketTransport) dialPeerLocked(owner int, p *socketPeer) error {
	c, err := net.DialTimeout(t.cfg.Network, p.addr, t.cfg.Timeouts.Dial)
	if err != nil {
		return fmt.Errorf("%w: dial node %d (%s %s): %w", ErrPeerDead, owner, t.cfg.Network, p.addr, err)
	}
	if t.cfg.WrapConn != nil {
		c = t.cfg.WrapConn(owner, c)
	}
	p.mu.Lock()
	if p.conn != nil {
		p.conn.Close()
	}
	p.conn = c
	p.err = nil
	err = t.exchangeLocked(owner, p, &wireMsg{op: opHello, node: owner}, opAck)
	p.mu.Unlock()
	if err != nil {
		return fmt.Errorf("hello to node %d (%s %s): %w", owner, t.cfg.Network, p.addr, err)
	}
	return nil
}

// redialPeer replaces a (typically dead) peer's connection with a freshly
// dialed, hello-verified one and clears the sticky error — the revive
// primitive of the ResilientTransport. The caller must exclude concurrent
// operations against this peer for the duration.
func (t *SocketTransport) redialPeer(owner int) error {
	t.mu.Lock()
	dead := t.dead
	t.mu.Unlock()
	if dead {
		return ErrClosed
	}
	return t.dialPeerLocked(owner, t.peers[owner])
}

// setPeerAddr moves a peer's dial address (a node restarted on a new port,
// or a spare process adopting the dead peer's shard). Takes effect on the
// next redialPeer.
func (t *SocketTransport) setPeerAddr(owner int, addr string) {
	p := t.peers[owner]
	p.mu.Lock()
	p.addr = addr
	p.mu.Unlock()
}

// peerAddr returns a peer's current dial address.
func (t *SocketTransport) peerAddr(owner int) string {
	p := t.peers[owner]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

// peerErr returns a peer's sticky error (nil while healthy).
func (t *SocketTransport) peerErr(owner int) error {
	p := t.peers[owner]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Name reports the socket family ("unix" or "tcp").
func (t *SocketTransport) Name() string { return t.cfg.Network }

// Multiproc reports true: rows cross a process boundary.
func (t *SocketTransport) Multiproc() bool { return true }

// Close closes every peer connection. Idempotent; in-flight exchanges fail
// with their conn's error and mark the peer dead.
func (t *SocketTransport) Close() error {
	t.closed.Do(func() {
		t.mu.Lock()
		t.dead = true
		t.mu.Unlock()
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			p.mu.Lock()
			if p.conn != nil {
				p.conn.Close()
			}
			p.mu.Unlock()
		}
	})
	return nil
}

// exchange runs one request/response round-trip against a peer under its
// mutex: encode req, write the frame under a fresh write deadline, read
// exactly one reply frame under a fresh read deadline, decode it, and demand
// the wanted opcode (opError replies surface as their mapped typed error).
// Any I/O or protocol failure marks the peer dead.
func (t *SocketTransport) exchange(owner int, p *socketPeer, req *wireMsg, want byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return t.exchangeLocked(owner, p, req, want)
}

// exchangeLocked is exchange with p.mu already held — for callers that must
// also read the decoded reply (p.rep) before another operation on the same
// peer can overwrite it.
func (t *SocketTransport) exchangeLocked(owner int, p *socketPeer, req *wireMsg, want byte) error {
	if p.err != nil {
		return p.err
	}
	t.mu.Lock()
	dead := t.dead
	t.mu.Unlock()
	if dead {
		return ErrClosed
	}
	fail := func(stage string, err error) error {
		// Both %w verbs matter: callers classify on ErrPeerDead AND on the
		// underlying codec error (ErrFrameTooLarge & co) via errors.Is. The
		// wrap carries the node id and its dial address so a failure in a
		// many-node fabric names the process to look at.
		p.err = fmt.Errorf("%w: node %d (%s %s) %s: %w", ErrPeerDead, owner, t.cfg.Network, p.addr, stage, err)
		p.conn.Close()
		return p.err
	}
	p.out = appendMsg(append(p.out[:0], 0, 0, 0, 0), req)
	// Per-operation deadlines, checked: the write deadline covers exactly
	// this frame's write, and the read deadline is re-armed AFTER the write
	// completes, so a slow peer mid-readFrame gets the full IO budget rather
	// than riding whatever remained of a stale combined deadline.
	if err := p.conn.SetWriteDeadline(time.Now().Add(t.cfg.Timeouts.IO)); err != nil { //hotline:allow detorder deadline arming; timeouts are a fault policy, not math
		return fail("arm write deadline", err)
	}
	if err := writeFrame(p.conn, p.out); err != nil {
		return fail("write", err)
	}
	if err := p.conn.SetReadDeadline(time.Now().Add(t.cfg.Timeouts.IO)); err != nil { //hotline:allow detorder deadline arming; timeouts are a fault policy, not math
		return fail("arm read deadline", err)
	}
	payload, err := readFrame(p.conn, p.in)
	if err != nil {
		return fail("read", err)
	}
	p.in = payload[:cap(payload)]
	if err := decodeMsg(payload, &p.rep); err != nil {
		return fail("decode", err)
	}
	if p.rep.op == opError {
		// A typed application error (e.g. unknown row) leaves the conn
		// healthy — framing is intact, the node answered.
		return wireErr(p.rep.code, p.rep.text)
	}
	if p.rep.op != want {
		// A well-framed reply with the wrong opcode is a protocol
		// violation: type it ErrBadFrame so the fault grid can classify
		// it, and let fail mark the peer dead (the stream is desynced).
		return fail("reply", fmt.Errorf("%w: reply opcode %d, want %d", ErrBadFrame, p.rep.op, want))
	}
	return nil
}

// maxRowsPerFrame returns how many dim-wide rows fit one frame with slack
// for the opcode and varint headers.
func maxRowsPerFrame(dim int) int {
	n := (MaxFrame - 64) / (5 + 4*dim) // ≤5 varint bytes per row id + payload
	if n < 1 {
		n = 1
	}
	return n
}

// Fetch implements Transport: the listed rows stream back from their owner
// process into the staging buffer. Requests are chunked so neither the
// fetch frame nor its reply exceeds MaxFrame. The local FetchFunc is
// ignored — the whole point is that the bytes come off the socket.
func (t *SocketTransport) Fetch(table, owner int, rows []int32, st *Staging, local FetchFunc) error {
	p := t.peers[owner]
	chunk := maxRowsPerFrame(st.dim)
	for len(rows) > 0 {
		n := min(len(rows), chunk)
		if err := t.fetchChunk(table, owner, p, rows[:n], st); err != nil {
			return err
		}
		rows = rows[n:]
	}
	return nil
}

func (t *SocketTransport) fetchChunk(table, owner int, p *socketPeer, rows []int32, st *Staging) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	req := wireMsg{op: opFetch, table: table, rows: rows}
	if err := t.exchangeLocked(owner, p, &req, opRows); err != nil {
		return err
	}
	// Still under p.mu: the decoded reply is stable until the next exchange
	// on this peer, and the lock is what keeps that exchange out.
	rep := &p.rep
	if len(rep.rows) != len(rows) || (len(rows) > 0 && rep.dim != st.dim) {
		p.err = fmt.Errorf("%w: node %d (%s %s) returned %d rows dim %d, want %d rows dim %d",
			ErrPeerDead, owner, t.cfg.Network, p.addr, len(rep.rows), rep.dim, len(rows), st.dim)
		p.conn.Close()
		return p.err
	}
	for i, r := range rep.rows {
		if v, ok := st.Lookup(r); ok {
			copy(v, rep.vals[i*rep.dim:(i+1)*rep.dim])
		}
	}
	return nil
}

// maxQuantRowsPerFrame returns how many quantized rows of the given width fit
// one reply frame with slack for the opcode and varint headers. Width.RowBytes
// is exactly the wire payload per row (fp16: 2·dim; int8: dim + 4-byte scale).
func maxQuantRowsPerFrame(dim int, w Width) int {
	n := (MaxFrame - 64) / (5 + int(w.RowBytes(dim))) // ≤5 varint bytes per row id + payload
	if n < 1 {
		n = 1
	}
	return n
}

// FetchQuant fetches the listed rows from their owner process at a narrow
// wire width: the node quantizes each row from its fp32 store, the reply
// carries the int8/fp16 bits (2-4x fewer fabric bytes than Fetch), and the
// values are dequantized into the staging buffer here at the receiving edge.
// The staged value is exactly dequant(quant(owner row)) — the same coherent
// warm-tier replica the fused dequantize-gather serves from a local cache
// hit, so a quantized refill and a quantized hit agree bit for bit.
//
// The default training and serve paths do not use this (they fetch exact
// bits and quantize locally, keeping cross-transport counters and values
// identical); it is the wire format for fabrics whose bottleneck is
// all-to-all bytes rather than HBM.
func (t *SocketTransport) FetchQuant(table, owner int, w Width, rows []int32, st *Staging) error {
	if w != WidthFP16 && w != WidthINT8 {
		return fmt.Errorf("%w: FetchQuant width %v", ErrFabricConfig, w)
	}
	p := t.peers[owner]
	chunk := maxQuantRowsPerFrame(st.dim, w)
	for len(rows) > 0 {
		n := min(len(rows), chunk)
		if err := t.fetchQuantChunk(table, owner, p, w, rows[:n], st); err != nil {
			return err
		}
		rows = rows[n:]
	}
	return nil
}

func (t *SocketTransport) fetchQuantChunk(table, owner int, p *socketPeer, w Width, rows []int32, st *Staging) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	want := opRows8
	if w == WidthFP16 {
		want = opRows16
	}
	req := wireMsg{op: opFetchQ, table: table, width: w, rows: rows}
	if err := t.exchangeLocked(owner, p, &req, want); err != nil {
		return err
	}
	// Still under p.mu: the decoded reply is stable until the next exchange
	// on this peer, and the lock is what keeps that exchange out.
	rep := &p.rep
	if len(rep.rows) != len(rows) || (len(rows) > 0 && rep.dim != st.dim) {
		p.err = fmt.Errorf("%w: node %d (%s %s) returned %d quantized rows dim %d, want %d rows dim %d",
			ErrPeerDead, owner, t.cfg.Network, p.addr, len(rep.rows), rep.dim, len(rows), st.dim)
		p.conn.Close()
		return p.err
	}
	for i, r := range rep.rows {
		v, ok := st.Lookup(r)
		if !ok {
			continue
		}
		if w == WidthFP16 {
			tensor.DequantizeRowF16(v, rep.h16[i*rep.dim:(i+1)*rep.dim])
		} else {
			tensor.DequantizeRowI8(v, rep.i8[i*rep.dim:(i+1)*rep.dim], rep.scales[i])
		}
	}
	return nil
}

// Push implements Transport: the rows' current payloads travel to their
// owner process, chunked under MaxFrame, each chunk acknowledged before the
// next is sent — a returned nil means the owner's store has the new bits.
func (t *SocketTransport) Push(table, owner int, rows []int32, src RowAt) error {
	if len(rows) == 0 {
		return nil
	}
	p := t.peers[owner]
	dim := len(src(rows[0]))
	chunk := maxRowsPerFrame(dim)
	for len(rows) > 0 {
		n := min(len(rows), chunk)
		if err := t.pushChunk(table, owner, p, rows[:n], dim, src); err != nil {
			return err
		}
		rows = rows[n:]
	}
	return nil
}

func (t *SocketTransport) pushChunk(table, owner int, p *socketPeer, rows []int32, dim int, src RowAt) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Stage the values contiguously in the peer's scratch so appendMsg can
	// slice them row-major; the encode copies them into the frame before
	// the reply decode could touch the scratch again.
	vals := p.rep.vals[:0]
	for _, r := range rows {
		vals = append(vals, src(r)...)
	}
	p.rep.vals = vals
	req := wireMsg{op: opPush, table: table, dim: dim, rows: rows, vals: vals}
	return t.exchangeLocked(owner, p, &req, opAck)
}

// LocalFabric is a self-contained socket fabric for tests, experiments and
// single-machine runs: every NodeServer runs in-process behind a real unix
// or port-0 TCP socket, so frames still cross the kernel and the wall-clock
// numbers are honest socket numbers, without spawning OS processes.
type LocalFabric struct {
	Transport *SocketTransport
	Servers   []*NodeServer
	dir       string
}

// StartLocalFabric listens one NodeServer per node and dials the fabric.
// network is "unix" (sockets under a fresh temp dir) or "tcp" (loopback,
// port 0). timeout bounds each fabric operation (FabricTimeouts.IO; zero
// selects the defaults) and wrap is FabricConfig.WrapConn (nil for a
// healthy fabric).
func StartLocalFabric(nodes int, network string, timeout time.Duration, wrap func(int, net.Conn) net.Conn) (*LocalFabric, error) {
	f := &LocalFabric{Servers: make([]*NodeServer, 0, nodes)}
	addrs := make([]string, 0, nodes)
	for n := 0; n < nodes; n++ {
		addr, err := f.localAddr(network, n)
		if err != nil {
			return nil, err
		}
		srv, err := ServeNode(n, network, addr)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Servers = append(f.Servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	tr, err := DialFabric(FabricConfig{
		Network: network, Addrs: addrs,
		Timeouts: FabricTimeouts{Dial: timeout, IO: timeout},
		WrapConn: wrap,
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	f.Transport = tr
	return f, nil
}

// localAddr picks a fresh listen address for one in-process node: a socket
// path under the fabric's temp dir ("unix"), or loopback port 0 ("tcp").
// Repeated calls for the same node yield distinct paths, so a restarted
// node never fights its predecessor's socket file.
func (f *LocalFabric) localAddr(network string, node int) (string, error) {
	switch network {
	case "unix":
		if f.dir == "" {
			// Keep the path short: unix socket paths cap near 100 bytes.
			d, err := os.MkdirTemp("", "hlfab")
			if err != nil {
				return "", err
			}
			f.dir = d
		}
		for gen := 0; ; gen++ {
			addr := filepath.Join(f.dir, fmt.Sprintf("n%d_%d.sock", node, gen))
			if _, err := os.Stat(addr); os.IsNotExist(err) {
				return addr, nil
			}
		}
	case "tcp":
		return "127.0.0.1:0", nil
	default:
		return "", fmt.Errorf("%w: unknown fabric network %q", ErrFabricConfig, network)
	}
}

// Close tears the fabric down: transport first, then the servers, then the
// socket dir. Idempotent.
func (f *LocalFabric) Close() error {
	var first error
	if f.Transport != nil {
		first = f.Transport.Close()
	}
	for _, s := range f.Servers {
		if s == nil {
			continue
		}
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	if f.dir != "" {
		os.RemoveAll(f.dir)
		f.dir = ""
	}
	return first
}
