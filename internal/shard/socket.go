//hotline:typed-errors

package shard

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FabricConfig describes how the coordinator reaches its shard node
// processes.
type FabricConfig struct {
	// Network is "unix" or "tcp".
	Network string
	// Addrs[owner] is the listen address of owner's node process.
	Addrs []string
	// Timeout bounds every dial and every request/response exchange
	// (connection deadlines are re-armed per operation). Defaults to
	// DefaultFabricTimeout.
	Timeout time.Duration
	// WrapConn, when set, wraps each freshly dialed peer connection — the
	// fault-injection seam the conformance suite uses to drop, corrupt,
	// truncate or delay frames. Production fabrics leave it nil.
	WrapConn func(owner int, c net.Conn) net.Conn
}

// DefaultFabricTimeout bounds fabric operations when FabricConfig.Timeout
// is zero.
const DefaultFabricTimeout = 10 * time.Second

// socketPeer is the coordinator's connection to one node process. A peer is
// strictly request/response and mutex-serialized: the gather drainers, the
// training thread's scatter pushes and the serve path may all address the
// same owner concurrently, and interleaving frames on one conn would corrupt
// the stream. A failed exchange marks the peer dead (sticky): later
// operations fail fast with ErrPeerDead instead of hanging on a broken conn.
type socketPeer struct {
	mu   sync.Mutex
	conn net.Conn
	err  error   // sticky; nil while healthy
	out  []byte  // encode scratch
	in   []byte  // reply read scratch
	rep  wireMsg // decoded reply, slices reused
}

// SocketTransport is the multi-process fabric: per-owner gather fetch lists
// and pre-reduced scatter pushes travel as wire-protocol frames over one
// socket per node process. Safe for concurrent use; operations against
// distinct owners proceed in parallel.
type SocketTransport struct {
	cfg    FabricConfig
	peers  []*socketPeer
	closed sync.Once
	dead   bool
	mu     sync.Mutex
}

// DialFabric connects to every node process in cfg.Addrs and verifies each
// with a hello exchange, so a mis-wired fabric fails at dial time, not mid-
// training. The caller owns the returned transport and must Close it.
func DialFabric(cfg FabricConfig) (*SocketTransport, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultFabricTimeout
	}
	t := &SocketTransport{cfg: cfg, peers: make([]*socketPeer, len(cfg.Addrs))}
	for o, addr := range cfg.Addrs {
		c, err := net.DialTimeout(cfg.Network, addr, cfg.Timeout)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("shard: dial node %d (%s %s): %w", o, cfg.Network, addr, err)
		}
		if cfg.WrapConn != nil {
			c = cfg.WrapConn(o, c)
		}
		p := &socketPeer{conn: c}
		t.peers[o] = p
		if err := t.exchange(o, p, &wireMsg{op: opHello, node: o}, opAck); err != nil {
			t.Close()
			return nil, fmt.Errorf("shard: hello to node %d: %w", o, err)
		}
	}
	return t, nil
}

// Name reports the socket family ("unix" or "tcp").
func (t *SocketTransport) Name() string { return t.cfg.Network }

// Multiproc reports true: rows cross a process boundary.
func (t *SocketTransport) Multiproc() bool { return true }

// Close closes every peer connection. Idempotent; in-flight exchanges fail
// with their conn's error and mark the peer dead.
func (t *SocketTransport) Close() error {
	t.closed.Do(func() {
		t.mu.Lock()
		t.dead = true
		t.mu.Unlock()
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			p.conn.Close()
		}
	})
	return nil
}

// exchange runs one request/response round-trip against a peer under its
// mutex: encode req, write the frame under a fresh deadline, read exactly
// one reply frame, decode it, and demand the wanted opcode (opError replies
// surface as their mapped typed error). Any I/O or protocol failure marks
// the peer dead.
func (t *SocketTransport) exchange(owner int, p *socketPeer, req *wireMsg, want byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return t.exchangeLocked(owner, p, req, want)
}

// exchangeLocked is exchange with p.mu already held — for callers that must
// also read the decoded reply (p.rep) before another operation on the same
// peer can overwrite it.
func (t *SocketTransport) exchangeLocked(owner int, p *socketPeer, req *wireMsg, want byte) error {
	if p.err != nil {
		return p.err
	}
	t.mu.Lock()
	dead := t.dead
	t.mu.Unlock()
	if dead {
		return ErrClosed
	}
	fail := func(stage string, err error) error {
		// Both %w verbs matter: callers classify on ErrPeerDead AND on the
		// underlying codec error (ErrFrameTooLarge & co) via errors.Is.
		p.err = fmt.Errorf("%w: node %d %s: %w", ErrPeerDead, owner, stage, err)
		p.conn.Close()
		return p.err
	}
	p.out = appendMsg(append(p.out[:0], 0, 0, 0, 0), req)
	p.conn.SetDeadline(time.Now().Add(t.cfg.Timeout)) //hotline:allow detorder deadline arming; timeouts are a fault policy, not math
	if err := writeFrame(p.conn, p.out); err != nil {
		return fail("write", err)
	}
	payload, err := readFrame(p.conn, p.in)
	if err != nil {
		return fail("read", err)
	}
	p.in = payload[:cap(payload)]
	if err := decodeMsg(payload, &p.rep); err != nil {
		return fail("decode", err)
	}
	if p.rep.op == opError {
		// A typed application error (e.g. unknown row) leaves the conn
		// healthy — framing is intact, the node answered.
		return wireErr(p.rep.code, p.rep.text)
	}
	if p.rep.op != want {
		// A well-framed reply with the wrong opcode is a protocol
		// violation: type it ErrBadFrame so the fault grid can classify
		// it, and let fail mark the peer dead (the stream is desynced).
		return fail("reply", fmt.Errorf("%w: reply opcode %d, want %d", ErrBadFrame, p.rep.op, want))
	}
	return nil
}

// maxRowsPerFrame returns how many dim-wide rows fit one frame with slack
// for the opcode and varint headers.
func maxRowsPerFrame(dim int) int {
	n := (MaxFrame - 64) / (5 + 4*dim) // ≤5 varint bytes per row id + payload
	if n < 1 {
		n = 1
	}
	return n
}

// Fetch implements Transport: the listed rows stream back from their owner
// process into the staging buffer. Requests are chunked so neither the
// fetch frame nor its reply exceeds MaxFrame. The local FetchFunc is
// ignored — the whole point is that the bytes come off the socket.
func (t *SocketTransport) Fetch(table, owner int, rows []int32, st *Staging, local FetchFunc) error {
	p := t.peers[owner]
	chunk := maxRowsPerFrame(st.dim)
	for len(rows) > 0 {
		n := min(len(rows), chunk)
		if err := t.fetchChunk(table, owner, p, rows[:n], st); err != nil {
			return err
		}
		rows = rows[n:]
	}
	return nil
}

func (t *SocketTransport) fetchChunk(table, owner int, p *socketPeer, rows []int32, st *Staging) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	req := wireMsg{op: opFetch, table: table, rows: rows}
	if err := t.exchangeLocked(owner, p, &req, opRows); err != nil {
		return err
	}
	// Still under p.mu: the decoded reply is stable until the next exchange
	// on this peer, and the lock is what keeps that exchange out.
	rep := &p.rep
	if len(rep.rows) != len(rows) || (len(rows) > 0 && rep.dim != st.dim) {
		p.err = fmt.Errorf("%w: node %d returned %d rows dim %d, want %d rows dim %d",
			ErrPeerDead, owner, len(rep.rows), rep.dim, len(rows), st.dim)
		p.conn.Close()
		return p.err
	}
	for i, r := range rep.rows {
		if v, ok := st.Lookup(r); ok {
			copy(v, rep.vals[i*rep.dim:(i+1)*rep.dim])
		}
	}
	return nil
}

// Push implements Transport: the rows' current payloads travel to their
// owner process, chunked under MaxFrame, each chunk acknowledged before the
// next is sent — a returned nil means the owner's store has the new bits.
func (t *SocketTransport) Push(table, owner int, rows []int32, src RowAt) error {
	if len(rows) == 0 {
		return nil
	}
	p := t.peers[owner]
	dim := len(src(rows[0]))
	chunk := maxRowsPerFrame(dim)
	for len(rows) > 0 {
		n := min(len(rows), chunk)
		if err := t.pushChunk(table, owner, p, rows[:n], dim, src); err != nil {
			return err
		}
		rows = rows[n:]
	}
	return nil
}

func (t *SocketTransport) pushChunk(table, owner int, p *socketPeer, rows []int32, dim int, src RowAt) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Stage the values contiguously in the peer's scratch so appendMsg can
	// slice them row-major; the encode copies them into the frame before
	// the reply decode could touch the scratch again.
	vals := p.rep.vals[:0]
	for _, r := range rows {
		vals = append(vals, src(r)...)
	}
	p.rep.vals = vals
	req := wireMsg{op: opPush, table: table, dim: dim, rows: rows, vals: vals}
	return t.exchangeLocked(owner, p, &req, opAck)
}

// LocalFabric is a self-contained socket fabric for tests, experiments and
// single-machine runs: every NodeServer runs in-process behind a real unix
// or port-0 TCP socket, so frames still cross the kernel and the wall-clock
// numbers are honest socket numbers, without spawning OS processes.
type LocalFabric struct {
	Transport *SocketTransport
	Servers   []*NodeServer
	dir       string
}

// StartLocalFabric listens one NodeServer per node and dials the fabric.
// network is "unix" (sockets under a fresh temp dir) or "tcp" (loopback,
// port 0). wrap is FabricConfig.WrapConn (nil for a healthy fabric).
func StartLocalFabric(nodes int, network string, timeout time.Duration, wrap func(int, net.Conn) net.Conn) (*LocalFabric, error) {
	f := &LocalFabric{Servers: make([]*NodeServer, 0, nodes)}
	addrs := make([]string, 0, nodes)
	for n := 0; n < nodes; n++ {
		var addr string
		switch network {
		case "unix":
			if f.dir == "" {
				// Keep the path short: unix socket paths cap near 100 bytes.
				d, err := os.MkdirTemp("", "hlfab")
				if err != nil {
					return nil, err
				}
				f.dir = d
			}
			addr = filepath.Join(f.dir, fmt.Sprintf("n%d.sock", n))
		case "tcp":
			addr = "127.0.0.1:0"
		default:
			return nil, fmt.Errorf("%w: unknown fabric network %q", ErrFabricConfig, network)
		}
		srv, err := ServeNode(n, network, addr)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Servers = append(f.Servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	tr, err := DialFabric(FabricConfig{Network: network, Addrs: addrs, Timeout: timeout, WrapConn: wrap})
	if err != nil {
		f.Close()
		return nil, err
	}
	f.Transport = tr
	return f, nil
}

// Close tears the fabric down: transport first, then the servers, then the
// socket dir. Idempotent.
func (f *LocalFabric) Close() error {
	var first error
	if f.Transport != nil {
		first = f.Transport.Close()
	}
	for _, s := range f.Servers {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	if f.dir != "" {
		os.RemoveAll(f.dir)
		f.dir = ""
	}
	return first
}
