package shard

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hotline/internal/tensor"
)

// fabricTimeout derives the fabric's per-op timeout from the test's own
// deadline so a hung socket fails the test loudly instead of timing the
// whole run out (the deflake contract: no fixed sleeps, no fixed ports).
func fabricTimeout(t *testing.T) time.Duration {
	if d, ok := t.Deadline(); ok {
		if rem := time.Until(d) / 2; rem < DefaultFabricTimeout {
			return rem
		}
	}
	return DefaultFabricTimeout
}

// stagingFor builds a bare staging buffer keyed by the given rows.
func stagingFor(rows []int32, dim int) *Staging {
	slot := make(map[int32]int, len(rows))
	for i, r := range rows {
		slot[r] = i
	}
	return &Staging{dim: dim, buf: make([]float32, len(rows)*dim), slot: slot}
}

// rowPattern yields a deterministic, row-distinct payload.
func rowPattern(dim int) RowAt {
	buf := make([]float32, dim)
	return func(row int32) []float32 {
		for k := range buf {
			buf[k] = float32(row)*1000 + float32(k)
		}
		return buf
	}
}

func checkFetched(t *testing.T, st *Staging, rows []int32, dim int) {
	t.Helper()
	for _, r := range rows {
		v, ok := st.Lookup(r)
		if !ok {
			t.Fatalf("row %d missing from staging", r)
		}
		for k := 0; k < dim; k++ {
			if want := float32(r)*1000 + float32(k); v[k] != want {
				t.Fatalf("row %d[%d] = %v want %v", r, k, v[k], want)
			}
		}
	}
}

func testFabricRoundTrip(t *testing.T, network string) {
	const dim = 8
	f, err := StartLocalFabric(2, network, fabricTimeout(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr := f.Transport

	rows := []int32{0, 2, 4, 6}
	if err := tr.Push(1, 0, rows, rowPattern(dim)); err != nil {
		t.Fatalf("push: %v", err)
	}
	st := stagingFor(rows, dim)
	if err := tr.Fetch(1, 0, rows, st, nil); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	checkFetched(t, st, rows, dim)

	// A row the node never received is a typed application error that
	// leaves the connection healthy.
	if err := tr.Fetch(1, 0, []int32{99}, stagingFor([]int32{99}, dim), nil); !errors.Is(err, ErrUnknownRow) {
		t.Fatalf("unknown row: got %v want ErrUnknownRow", err)
	}
	st2 := stagingFor(rows, dim)
	if err := tr.Fetch(1, 0, rows, st2, nil); err != nil {
		t.Fatalf("fetch after unknown-row error: %v", err)
	}
	checkFetched(t, st2, rows, dim)

	if s := f.Servers[0].Stats(); s.RowsStored != int64(len(rows)) || s.RowsHeld != len(rows) {
		t.Fatalf("node 0 stats = %+v", s)
	}
}

func TestSocketFabricUnix(t *testing.T) { testFabricRoundTrip(t, "unix") }

func TestSocketFabricTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("unix sockets only in -short (CI deflake contract)")
	}
	testFabricRoundTrip(t, "tcp")
}

// TestSocketFabricChunking pushes and fetches a row list whose frames would
// exceed MaxFrame unchunked, so both directions must split.
func TestSocketFabricChunking(t *testing.T) {
	const dim = 512
	const n = 1500 // ≈3 frames at (MaxFrame-64)/(5+4*512)
	if maxRowsPerFrame(dim) >= n {
		t.Fatalf("test geometry no longer chunks: %d rows/frame", maxRowsPerFrame(dim))
	}
	f, err := StartLocalFabric(1, "unix", fabricTimeout(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	if err := f.Transport.Push(0, 0, rows, rowPattern(dim)); err != nil {
		t.Fatalf("push: %v", err)
	}
	st := stagingFor(rows, dim)
	if err := f.Transport.Fetch(0, 0, rows, st, nil); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	checkFetched(t, st, rows, dim)
	if s := f.Servers[0].Stats(); s.FetchFrames < 2 || s.PushFrames < 2 {
		t.Fatalf("expected chunked frames, got %+v", s)
	}
}

// TestSocketFetchQuant covers the quantized wire format end to end: rows
// pushed at fp32 come back over opRows8/opRows16 and must stage exactly the
// fused round trip of the authoritative bits — the same value a local
// warm-tier hit serves — while an unknown row stays a typed application
// error that leaves the connection healthy.
func TestSocketFetchQuant(t *testing.T) {
	const dim = 8
	f, err := StartLocalFabric(1, "unix", fabricTimeout(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr := f.Transport

	rows := []int32{0, 2, 5}
	if err := tr.Push(0, 0, rows, rowPattern(dim)); err != nil {
		t.Fatalf("push: %v", err)
	}
	pat := rowPattern(dim)
	for _, w := range []Width{WidthINT8, WidthFP16} {
		st := stagingFor(rows, dim)
		if err := tr.FetchQuant(0, 0, w, rows, st); err != nil {
			t.Fatalf("%v fetch: %v", w, err)
		}
		want := make([]float32, dim)
		lossy := false
		for _, r := range rows {
			exact := pat(r)
			if w == WidthINT8 {
				tensor.RoundTripI8(want, exact)
			} else {
				tensor.RoundTripF16(want, exact)
			}
			v, ok := st.Lookup(r)
			if !ok {
				t.Fatalf("%v row %d missing from staging", w, r)
			}
			for k := range v {
				if v[k] != want[k] {
					t.Fatalf("%v row %d[%d] = %v, want fused round trip %v", w, r, k, v[k], want[k])
				}
				if v[k] != exact[k] {
					lossy = true
				}
			}
		}
		if !lossy {
			t.Fatalf("%v: test rows round-trip exactly; the fidelity assertion is vacuous", w)
		}
	}

	if err := tr.FetchQuant(0, 0, WidthINT8, []int32{99}, stagingFor([]int32{99}, dim)); !errors.Is(err, ErrUnknownRow) {
		t.Fatalf("unknown row: got %v want ErrUnknownRow", err)
	}
	if err := tr.FetchQuant(0, 0, WidthFP32, rows, stagingFor(rows, dim)); !errors.Is(err, ErrFabricConfig) {
		t.Fatalf("fp32 width: got %v want ErrFabricConfig (full-precision fetches travel as opFetch)", err)
	}
	// The error paths left the conn healthy: a normal fetch still works.
	st := stagingFor(rows, dim)
	if err := tr.Fetch(0, 0, rows, st, nil); err != nil {
		t.Fatalf("fetch after quant errors: %v", err)
	}
	checkFetched(t, st, rows, dim)
}

// TestSocketFetchQuantChunking moves a quantized fetch whose reply exceeds
// MaxFrame unchunked; the narrow widths pack more rows per frame than fp32.
func TestSocketFetchQuantChunking(t *testing.T) {
	const dim = 512
	const n = 3000
	if maxQuantRowsPerFrame(dim, WidthINT8) >= n {
		t.Fatalf("test geometry no longer chunks: %d rows/frame", maxQuantRowsPerFrame(dim, WidthINT8))
	}
	if maxQuantRowsPerFrame(dim, WidthINT8) <= maxRowsPerFrame(dim) {
		t.Fatal("int8 frames must pack more rows than fp32 frames")
	}
	f, err := StartLocalFabric(1, "unix", fabricTimeout(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	if err := f.Transport.Push(0, 0, rows, rowPattern(dim)); err != nil {
		t.Fatalf("push: %v", err)
	}
	st := stagingFor(rows, dim)
	if err := f.Transport.FetchQuant(0, 0, WidthINT8, rows, st); err != nil {
		t.Fatalf("quant fetch: %v", err)
	}
	pat := rowPattern(dim)
	want := make([]float32, dim)
	for _, r := range []int32{0, 1499, n - 1} { // spot-check across chunk boundaries
		tensor.RoundTripI8(want, pat(r))
		v, _ := st.Lookup(r)
		for k := range v {
			if v[k] != want[k] {
				t.Fatalf("row %d[%d] = %v want %v", r, k, v[k], want[k])
			}
		}
	}
}

// TestSocketPeerDeathIsSticky kills a node process mid-run: the first
// operation fails with ErrPeerDead, and every later one fails fast with the
// same error instead of hanging on the broken conn.
func TestSocketPeerDeathIsSticky(t *testing.T) {
	const dim = 4
	f, err := StartLocalFabric(2, "unix", fabricTimeout(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows := []int32{1, 3}
	if err := f.Transport.Push(0, 1, rows, rowPattern(dim)); err != nil {
		t.Fatal(err)
	}
	f.Servers[1].Close()
	for i := 0; i < 2; i++ {
		err := f.Transport.Fetch(0, 1, rows, stagingFor(rows, dim), nil)
		if !errors.Is(err, ErrPeerDead) {
			t.Fatalf("fetch %d from dead peer: got %v want ErrPeerDead", i, err)
		}
	}
	// The other peer is unaffected.
	if err := f.Transport.Push(0, 0, rows, rowPattern(dim)); err != nil {
		t.Fatalf("healthy peer after neighbour died: %v", err)
	}
}

func TestSocketTransportClosedOps(t *testing.T) {
	f, err := StartLocalFabric(1, "unix", fabricTimeout(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Transport.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Transport.Close(); err != nil {
		t.Fatal("second transport Close:", err)
	}
	err = f.Transport.Fetch(0, 0, []int32{0}, stagingFor([]int32{0}, 4), nil)
	if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrPeerDead) {
		t.Fatalf("op on closed transport: %v", err)
	}
}

func TestNodeServerCloseIdempotent(t *testing.T) {
	srv, err := ServeNode(0, "unix", t.TempDir()+"/n.sock")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Close()
		}()
	}
	wg.Wait()
	srv.Close()
}

// TestServiceCloseIdempotent is the lifecycle regression test: double-Close
// (including concurrent double-Close) is race-clean, and a prefetch window
// still in flight at Close time can still be awaited and consumed — the
// drainers retire, but consumers help drain.
func TestServiceCloseIdempotent(t *testing.T) {
	f := newWindowFixture(t, 16, 4)
	q := f.svc.NewWindowQueue(0)
	idx := [][]int32{{1, 3}, {1, 3}}
	f.issue(q, idx)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := f.svc.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := f.svc.Close(); err != nil {
		t.Fatal("Close after concurrent Close:", err)
	}

	// The open window survives Close: Match + Consume still deliver the
	// staged bits.
	w := q.Match(idx)
	if w == nil {
		t.Fatal("window lost across Close")
	}
	st := q.Consume(w, f.fetch)
	if st == nil {
		t.Fatal("no staging after Close")
	}
	if v, ok := st.Lookup(3); !ok || v[0] != 300 {
		t.Fatalf("staged row 3 = %v, %v", v, ok)
	}
	f.g.Release(st)
	q.Recycle(w)
}

// TestServiceCloseWithSocketFabric closes a service whose transport is a
// live socket fabric: the transport must come down with it, idempotently.
func TestServiceCloseWithSocketFabric(t *testing.T) {
	f, err := StartLocalFabric(2, "unix", fabricTimeout(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	svc := New(Config{Nodes: 2, CacheBytes: 0, RowBytes: 16}, hotSet(0))
	svc.SetTransport(f.Transport)
	if !svc.Multiproc() {
		t.Fatal("socket fabric not marked multiproc")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal("second Close:", err)
	}
	err = f.Transport.Push(0, 0, []int32{0}, rowPattern(4))
	if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrPeerDead) {
		t.Fatalf("push on closed fabric: %v", err)
	}
}
