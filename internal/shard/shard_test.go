package shard

import (
	"testing"

	"hotline/internal/cost"
)

// mapClassifier marks an explicit set of rows hot.
type mapClassifier map[uint64]struct{}

func (m mapClassifier) IsHot(table int, row int32) bool {
	_, ok := m[key(table, row)]
	return ok
}

func hotSet(table int, rows ...int32) mapClassifier {
	m := make(mapClassifier)
	for _, r := range rows {
		m[key(table, r)] = struct{}{}
	}
	return m
}

func cfg(nodes int, cacheRows int) Config {
	return Config{Nodes: nodes, CacheBytes: int64(cacheRows) * 64, RowBytes: 64}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Nodes: 0, RowBytes: 64}).Validate(); err == nil {
		t.Fatal("0 nodes must fail validation")
	}
	if err := (Config{Nodes: 2, RowBytes: 0}).Validate(); err == nil {
		t.Fatal("0 row bytes must fail validation")
	}
	if got := cfg(2, 8).CacheRows(); got != 8 {
		t.Fatalf("CacheRows = %d want 8", got)
	}
}

func TestSingleNodeIsAllLocal(t *testing.T) {
	s := New(cfg(1, 16), nil)
	s.RecordGather(0, [][]int32{{0, 1}, {2, 3}})
	s.RecordScatter(0, [][]int32{{0, 1}, {2, 3}})
	st := s.Snapshot()
	if st.Lookups != 4 || st.Local != 4 {
		t.Fatalf("single node: %+v", st)
	}
	if st.A2ABytes() != 0 || st.RemoteFrac() != 0 {
		t.Fatalf("single node must move no bytes: %+v", st)
	}
}

func TestOwnerAndNodeRoundRobin(t *testing.T) {
	s := New(cfg(4, 0), nil)
	for r := int32(0); r < 16; r++ {
		if s.Owner(0, r) != int(r)%4 {
			t.Fatalf("owner of row %d = %d", r, s.Owner(0, r))
		}
	}
	if s.NodeOf(5) != 1 || s.NodeOf(8) != 0 {
		t.Fatal("round-robin sample dealing broken")
	}
}

func TestGatherRoutesAndAccounts(t *testing.T) {
	// 2 nodes, cache big enough for everything, everything hot.
	s := New(cfg(2, 16), nil)
	// Batch position 0 -> node 0, position 1 -> node 1.
	// Row 0 owned by node 0, row 1 by node 1.
	s.RecordGather(0, [][]int32{{0, 1}, {0, 1}})
	st := s.Snapshot()
	if st.Lookups != 4 || st.Local != 2 {
		t.Fatalf("lookups/local: %+v", st)
	}
	// Two remote accesses (node0->row1, node1->row0), both cold misses.
	if st.CacheMisses != 2 || st.CacheHits != 0 || st.GatherRows != 2 {
		t.Fatalf("first pass: %+v", st)
	}
	if st.GatherBytes != 2*64 || st.FillBytes != 2*64 {
		t.Fatalf("bytes: %+v", st)
	}
	// Second identical batch: remote rows were admitted, so both hit.
	s.RecordGather(0, [][]int32{{0, 1}, {0, 1}})
	st = s.Snapshot()
	if st.CacheHits != 2 || st.GatherRows != 2 {
		t.Fatalf("second pass should hit the cache: %+v", st)
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %g want 0.5", hr)
	}
}

func TestGatherDedupsWithinCall(t *testing.T) {
	// Cold (non-hot) row 1 accessed twice by node 0 in one call: one fetch.
	s := New(cfg(2, 16), hotSet(0)) // nothing hot
	s.RecordGather(0, [][]int32{{1, 1}})
	st := s.Snapshot()
	if st.CacheMisses != 2 || st.GatherRows != 1 {
		t.Fatalf("dedup: %+v", st)
	}
	// Not admitted (cold): a later call fetches again.
	s.RecordGather(0, [][]int32{{1}})
	if st = s.Snapshot(); st.GatherRows != 2 || st.FillBytes != 0 {
		t.Fatalf("cold row must not be cached: %+v", st)
	}
}

func TestScatterDedupsPerNode(t *testing.T) {
	s := New(cfg(2, 0), nil)
	// Positions 0 and 2 are node 0; both touch remote row 1 -> one message.
	// Position 1 (node 1) touches remote row 0 -> one message.
	s.RecordScatter(0, [][]int32{{1}, {0}, {1}})
	st := s.Snapshot()
	if st.ScatterRows != 2 || st.ScatterBytes != 2*64 {
		t.Fatalf("scatter: %+v", st)
	}
}

func TestPreloadFillsNonOwners(t *testing.T) {
	s := New(cfg(4, 8), nil)
	s.Preload(0, []int32{0, 1})
	st := s.Snapshot()
	// Each row replicates to 3 non-owner caches.
	if st.FillBytes != 6*64 {
		t.Fatalf("preload fill: %+v", st)
	}
	if occ := s.CacheOccupancy(); occ <= 0 {
		t.Fatal("preload must populate caches")
	}
	// Preloaded rows now hit.
	s.ResetStats()
	s.RecordGather(0, [][]int32{{1}}) // node 0, row 1 (owner node 1)
	if st = s.Snapshot(); st.CacheHits != 1 || st.GatherRows != 0 {
		t.Fatalf("preloaded row must hit: %+v", st)
	}
}

func TestResetStatsKeepsCacheState(t *testing.T) {
	s := New(cfg(2, 8), nil)
	s.RecordGather(0, [][]int32{{0, 1}, {0, 1}})
	s.ResetStats()
	if st := s.Snapshot(); st.Lookups != 0 {
		t.Fatalf("reset must zero counters: %+v", st)
	}
	s.RecordGather(0, [][]int32{{0, 1}, {0, 1}})
	if st := s.Snapshot(); st.CacheHits != 2 {
		t.Fatalf("cache contents must survive ResetStats: %+v", st)
	}
}

func TestStatsFractionsAndDeltas(t *testing.T) {
	s := New(cfg(2, 16), nil)
	s.RecordGather(0, [][]int32{{0, 1}, {0, 1}})
	a := s.Snapshot()
	s.RecordGather(0, [][]int32{{0, 1}, {0, 1}})
	b := s.Snapshot()
	d := b.Sub(a)
	if d.Lookups != 4 || d.CacheHits != 2 {
		t.Fatalf("delta: %+v", d)
	}
	if rf := b.RemoteFrac(); rf != 0.5 {
		t.Fatalf("remote frac = %g", rf)
	}
	if gf := b.GatherFrac(); gf != 0.25 {
		t.Fatalf("gather frac = %g", gf)
	}
}

// TestAllToAllTimeLinkSelection is the regression test for the guard/link
// disagreement: the snapshot's node count is authoritative, and NVLink only
// applies when all shard nodes fit one box of the given system.
func TestAllToAllTimeLinkSelection(t *testing.T) {
	const bytes = 1 << 20
	box4 := cost.PaperSystem(4)     // single box, 4 GPUs
	cluster := cost.PaperCluster(4) // 4 IB-connected boxes

	if got := (Stats{Nodes: 1, GatherBytes: bytes}).AllToAllTime(box4); got != 0 {
		t.Fatalf("single shard node must move nothing: %v", got)
	}

	// 4 shard nodes inside one 4-GPU box: intra-node NVLink.
	in := Stats{Nodes: 4, GatherBytes: bytes}
	if got, want := in.AllToAllTime(box4), cost.AllToAllTime(box4.NVLink, bytes/4, 4); got != want {
		t.Fatalf("intra-box a2a = %v want NVLink %v", got, want)
	}

	// The regression: 8 shard nodes cannot fit a 4-GPU box, so pricing the
	// traffic over NVLink (the old sys.Nodes-only rule) used the wrong
	// link; it must cross the inter-node fabric.
	out := Stats{Nodes: 8, GatherBytes: bytes}
	if got, want := out.AllToAllTime(box4), cost.AllToAllTime(box4.IB, bytes/8, 8); got != want {
		t.Fatalf("overflowing a2a = %v want IB %v", got, want)
	}
	if nv := cost.AllToAllTime(box4.NVLink, bytes/8, 8); out.AllToAllTime(box4) == nv {
		t.Fatal("overflowing topology must not be priced over NVLink")
	}

	// A multi-box system always prices the fabric, with the snapshot's own
	// participant count (2 shard nodes on a 4-node cluster).
	two := Stats{Nodes: 2, GatherBytes: bytes}
	if got, want := two.AllToAllTime(cluster), cost.AllToAllTime(cluster.IB, bytes/2, 2); got != want {
		t.Fatalf("cluster a2a = %v want IB over s.Nodes %v", got, want)
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Identical access streams on identical services produce identical
	// counters and cache contents, including under a tight cache.
	run := func() Stats {
		s := New(Config{Nodes: 4, CacheBytes: 4 * 64, RowBytes: 64, Policy: PolicySRRIP}, nil)
		for i := 0; i < 50; i++ {
			idx := make([][]int32, 8)
			for b := range idx {
				idx[b] = []int32{int32((i*7 + b) % 64), int32((i*13 + 3*b) % 64)}
			}
			s.RecordGather(0, idx)
			s.RecordScatter(0, idx)
		}
		return s.Snapshot()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay diverged:\n%+v\n%+v", a, b)
	}
}
