package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one type-checked module package as the analyzers see it.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	// Files are the syntax trees handed to analyzers. For an augmented
	// load (LoadTests) they include the in-package _test.go files.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the `go list -json` subset the loader consumes.
type listPkg struct {
	ImportPath  string
	Name        string
	Dir         string
	Export      string
	Standard    bool
	ForTest     string
	GoFiles     []string
	TestGoFiles []string
	Module      *struct{ Path string }
}

// A Loader type-checks the module's packages from source, resolving
// standard-library imports from the compiler's export data (harvested
// with one `go list -deps -test -export -json` run). Checking every
// module package from source — rather than from its own export data —
// keeps type identities consistent when test-augmented packages and their
// importers meet in one analysis (the same reason go/packages does it).
type Loader struct {
	dir  string
	fset *token.FileSet

	export map[string]string   // std import path -> export data file
	mod    map[string]*listPkg // module import path -> metadata
	order  []string            // module packages in `go list` order

	checked map[string]*Package // plain (no test files) packages, memoised
	std     types.ImporterFrom
}

// NewLoader harvests package metadata and export data for the module
// rooted at dir (the repo root).
func NewLoader(dir string) (*Loader, error) {
	l := &Loader{
		dir:     dir,
		fset:    token.NewFileSet(),
		export:  make(map[string]string),
		mod:     make(map[string]*listPkg),
		checked: make(map[string]*Package),
	}
	// -deps -test: every transitive dependency including test-only ones;
	// -export: compile them so stdlib type info is readable offline.
	out, err := l.goList("-deps", "-test", "-export", "-json", "./...")
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		switch {
		case p.Standard:
			if p.Export != "" {
				l.export[p.ImportPath] = p.Export
			}
		case p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test"):
			// Test variants and synthesised test binaries: the loader
			// builds its own augmented packages from TestGoFiles.
		case p.Module != nil:
			if _, ok := l.mod[p.ImportPath]; !ok {
				cp := p
				l.mod[p.ImportPath] = &cp
				l.order = append(l.order, p.ImportPath)
			}
		}
	}
	l.std = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.export[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}).(types.ImporterFrom)
	return l, nil
}

func (l *Loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// Import implements types.Importer over the mixed source/export world.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, ok := l.mod[path]; ok {
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.dir, 0)
}

// Fset returns the shared file set all loaded syntax uses.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModulePackages returns every module package path in `go list` order.
func (l *Loader) ModulePackages() []string {
	return append([]string(nil), l.order...)
}

// Load type-checks the named module package (non-test sources).
func (l *Loader) Load(path string) (*Package, error) { return l.check(path) }

// TestPackages returns the module packages carrying in-package _test.go
// files, in `go list` order — the candidate root set for test-driven
// checks like the hot-path/alloc-gate cross-check.
func (l *Loader) TestPackages() []string {
	var out []string
	for _, path := range l.order {
		if len(l.mod[path].TestGoFiles) > 0 {
			out = append(out, path)
		}
	}
	return out
}

// LoadAll type-checks every module package (non-test sources) — the
// hotline-vet gate's working set.
func (l *Loader) LoadAll() ([]*Package, error) {
	var out []*Package
	for _, path := range l.order {
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadTests type-checks the named package with its in-package _test.go
// files folded in — a separate check from the plain package, never cached
// as an import target (only leaves consume it: the hot-path/alloc-gate
// cross-check reads test syntax through this).
func (l *Loader) LoadTests(path string) (*Package, error) {
	lp, ok := l.mod[path]
	if !ok {
		return nil, fmt.Errorf("analysis: unknown module package %q", path)
	}
	names := append(append([]string(nil), lp.GoFiles...), lp.TestGoFiles...)
	return l.checkFiles(path+" [tests]", lp.Name, lp.Dir, names)
}

func (l *Loader) check(path string) (*Package, error) {
	if pkg, ok := l.checked[path]; ok {
		return pkg, nil
	}
	lp := l.mod[path]
	if lp == nil {
		return nil, fmt.Errorf("analysis: unknown module package %q", path)
	}
	pkg, err := l.checkFiles(path, lp.Name, lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	l.checked[path] = pkg
	return pkg, nil
}

// checkFiles parses and type-checks one file set as package pkgPath.
func (l *Loader) checkFiles(pkgPath, name, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, fn), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(pkgPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", pkgPath, typeErrs[0])
	}
	_ = name
	return &Package{
		PkgPath: pkgPath, Dir: dir, Fset: l.fset,
		Files: files, Types: tpkg, Info: info,
	}, nil
}

// LoadDir parses and type-checks an out-of-tree directory (an
// analysistest fixture under testdata/, invisible to `go list ./...`) as
// package pkgPath. Fixture files may import module packages — the
// markdirty/statslock fixtures exercise the real shard types.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading fixture dir: %w", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	return l.checkFiles(pkgPath, "", dir, names)
}
