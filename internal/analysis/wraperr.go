package analysis

import (
	"go/ast"
	"go/constant"
	"strings"
)

// Wraperr enforces the transport/codec typed-error convention (the
// ErrPeerDead protocol from the socket-fabric PR): every error a scoped
// file constructs must be classifiable with errors.Is, so callers — the
// conformance suite's fault-injection grid above all — can distinguish a
// dead peer from a malformed frame from a config mistake. Scope is the
// //hotline:typed-errors directive, package-wide in the package doc or
// per-file above the package clause (the shard package scopes it to its
// transport/codec files; the accounting simulation panics instead of
// returning errors).
var Wraperr = &Analyzer{
	Name: "wraperr",
	Doc: "require fmt.Errorf to %w-wrap a typed sentinel and forbid " +
		"function-local errors.New in //hotline:typed-errors files",
	Run: runWraperr,
}

func runWraperr(pass *Pass) error {
	pkgWide := PkgDirective(pass.Files, "typed-errors")
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		if !pkgWide && !FileDirective(f, "typed-errors") {
			continue
		}
		for _, fn := range fileFuncs(f) {
			if fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkErrCall(pass, call)
				return true
			})
		}
	}
	return nil
}

func checkErrCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeObject(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch {
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
		if len(call.Args) == 0 {
			return
		}
		tv := pass.Info.Types[call.Args[0]]
		if tv.Value == nil || tv.Value.Kind() != constant.String {
			return // dynamic format: out of static reach
		}
		if !strings.Contains(constant.StringVal(tv.Value), "%w") {
			pass.Report(call.Pos(), "fmt.Errorf without %%w builds an untyped error; wrap the matching sentinel (ErrPeerDead, ErrBadFrame, ...) so errors.Is can classify it")
		}
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
		pass.Report(call.Pos(), "errors.New inside a function creates an unmatchable one-off error; declare a package-level sentinel and %%w-wrap it")
	}
}
