package analysis

import (
	"go/ast"
	"go/types"
)

// Detorder enforces the bit-determinism contract on packages annotated
// //hotline:deterministic (in the package doc, conventionally doc.go):
// results must be identical for every worker count, pipeline depth and
// transport, so nothing on those paths may depend on map iteration
// order, wall-clock time or unseeded global randomness. Measurement
// code that reads the clock without feeding math (the fabric wall
// meters) suppresses with //hotline:allow detorder <reason>.
var Detorder = &Analyzer{
	Name: "detorder",
	Doc: "forbid map-order iteration, time.Now and unseeded math/rand in " +
		"//hotline:deterministic packages",
	Run: runDetorder,
}

// randConstructors are the math/rand functions that build seeded
// generators rather than consuming the unseeded global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDetorder(pass *Pass) error {
	if !PkgDirective(pass.Files, "deterministic") {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				if isMapType(pass.Info, x.X) && !isKeyCollectLoop(pass, x) {
					pass.Report(x.Pos(), "range over a map iterates in nondeterministic order; collect and sort the keys")
				}
			case *ast.CallExpr:
				checkDetCall(pass, x)
			}
			return true
		})
	}
	return nil
}

// isKeyCollectLoop recognises the recommended remediation itself — a
// range whose body only collects the keys for sorting:
//
//	for k := range m { keys = append(keys, k) }
//
// The iteration order never escapes (append is order-insensitive up to
// the sort that must follow), so flagging it would force an //hotline:
// allow onto exactly the pattern the diagnostic asks for.
func isKeyCollectLoop(pass *Pass, r *ast.RangeStmt) bool {
	if r.Value != nil || len(r.Body.List) != 1 {
		return false
	}
	key, ok := r.Key.(*ast.Ident)
	if !ok {
		return false
	}
	asg, ok := r.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltinCall(pass.Info, call, "append") || len(call.Args) != 2 {
		return false
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	return ok && arg.Name == key.Name
}

func checkDetCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeObject(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Report(call.Pos(), "time.%s on a deterministic path; results must not depend on wall clock (measurement-only reads need an //hotline:allow)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Methods on a *rand.Rand are seeded by whoever built it; only
		// package-level functions consume the shared unseeded source.
		if fn.Type().(*types.Signature).Recv() == nil && !randConstructors[fn.Name()] {
			pass.Report(call.Pos(), "%s.%s draws from the unseeded global source; thread a seeded *rand.Rand (tensor.NewRNG's pattern)", fn.Pkg().Path(), fn.Name())
		}
	case "maps":
		switch fn.Name() {
		case "Keys", "Values", "All":
			pass.Report(call.Pos(), "maps.%s yields elements in nondeterministic order; sort before iterating", fn.Name())
		}
	}
}
