package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file cross-checks the static and runtime halves of the hot-path
// contract: every function annotated //hotline:hotpath (checked at rest by
// the hotalloc analyzer) must be reachable from at least one alloc-gated
// test — a test function whose body invokes testing.AllocsPerRun. An
// annotation with no gate behind it is a contract nobody measures; the
// coverage check turns that drift into a test failure.
//
// Reachability is computed over a name-keyed static call graph:
//
//   - nodes are function declarations, keyed "pkgpath::Recv.Name";
//   - an edge runs from a declaration to every *types.Func its body
//     references (calls, method values, and functions passed as values
//     all count — the fetchFn/rowAt bindings are reference edges);
//   - dynamic dispatch is bridged by name: reaching an interface method
//     (a key with no body, e.g. embedding::Bag.Forward) marks every
//     module method of the same name reachable.
//
// The name bridge over-approximates (class-hierarchy analysis would be
// tighter) but never under-approximates: a function this check reports as
// unreachable has no call, reference, or same-name dispatch path from any
// alloc gate.

// A hotpathFunc is one //hotline:hotpath annotation found in the module.
type hotpathFunc struct {
	Key string // graph key, "pkgpath::Recv.Name"
	Pos string // file:line of the declaration, for reports
}

// hotpathGraph is the call graph the coverage check walks.
type hotpathGraph struct {
	edges     map[string][]string // decl key -> referenced keys
	bodies    map[string]bool     // keys with a declaration in the module
	byName    map[string][]string // method name -> module decl keys (dispatch bridge)
	roots     []string            // alloc-gated test functions
	annotated []hotpathFunc       // every //hotline:hotpath declaration
	seenAnnot map[string]bool     // dedup: plain and augmented loads overlap
}

// HotpathCoverage loads the module at dir with its in-package test files,
// builds the call graph, and returns every //hotline:hotpath function not
// reachable from an alloc-gated test (empty means full coverage).
func HotpathCoverage(dir string) ([]hotpathFunc, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	g := &hotpathGraph{
		edges:     make(map[string][]string),
		bodies:    make(map[string]bool),
		byName:    make(map[string][]string),
		seenAnnot: make(map[string]bool),
	}
	// Plain packages carry the annotations; augmented packages add the
	// test bodies (and re-state the plain bodies under identical keys).
	pkgs, err := l.LoadAll()
	if err != nil {
		return nil, err
	}
	for _, path := range l.TestPackages() {
		tp, err := l.LoadTests(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, tp)
	}
	for _, pkg := range pkgs {
		g.addPackage(pkg)
	}
	if len(g.roots) == 0 {
		return nil, fmt.Errorf("analysis: no testing.AllocsPerRun gates found under %s", dir)
	}
	reached := g.reach()
	var uncovered []hotpathFunc
	for _, fn := range g.annotated {
		if !reached[fn.Key] {
			uncovered = append(uncovered, fn)
		}
	}
	sort.Slice(uncovered, func(i, j int) bool { return uncovered[i].Pos < uncovered[j].Pos })
	return uncovered, nil
}

// addPackage folds one loaded package's declarations and edges in.
func (g *hotpathGraph) addPackage(pkg *Package) {
	pkgPath := strings.TrimSuffix(pkg.PkgPath, " [tests]")
	for _, f := range pkg.Files {
		inTest := strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go")
		for _, fn := range fileFuncs(f) {
			if fn.Body == nil {
				continue
			}
			key := declKey(pkgPath, fn)
			if !g.bodies[key] {
				g.bodies[key] = true
				if fn.Recv != nil {
					g.byName[fn.Name.Name] = append(g.byName[fn.Name.Name], key)
				}
			}
			if !inTest && FuncDirective(fn, "hotpath") && !g.seenAnnot[key] {
				g.seenAnnot[key] = true
				pos := pkg.Fset.Position(fn.Pos())
				g.annotated = append(g.annotated, hotpathFunc{
					Key: key,
					Pos: fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
				})
			}
			g.addEdges(pkg, key, fn, inTest)
		}
	}
}

// addEdges records an edge from key to every function the body references
// and, for test functions, detects the alloc-gate root condition.
func (g *hotpathGraph) addEdges(pkg *Package, key string, fn *ast.FuncDecl, inTest bool) {
	isRoot := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		callee, ok := pkg.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		if inTest && callee.Pkg() != nil && callee.Pkg().Path() == "testing" && callee.Name() == "AllocsPerRun" {
			isRoot = true
		}
		g.edges[key] = append(g.edges[key], funcKey(callee))
		return true
	})
	if isRoot {
		g.roots = append(g.roots, key)
	}
}

// reach runs the BFS from the alloc-gate roots, bridging bodiless module
// keys (interface methods) to same-named module methods.
func (g *hotpathGraph) reach() map[string]bool {
	reached := make(map[string]bool)
	queue := append([]string(nil), g.roots...)
	for _, r := range queue {
		reached[r] = true
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		next := g.edges[key]
		if !g.bodies[key] && strings.HasPrefix(key, modulePrefix) {
			// Interface method: dispatch could land on any module method
			// of the same name.
			if i := strings.LastIndex(key, "."); i >= 0 {
				next = append(next, g.byName[key[i+1:]]...)
			}
		}
		for _, n := range next {
			if !reached[n] {
				reached[n] = true
				queue = append(queue, n)
			}
		}
	}
	return reached
}

// modulePrefix scopes the dispatch bridge to this module's packages.
const modulePrefix = "hotline/"

// declKey is the graph key of a declaration: "pkgpath::Recv.Name".
func declKey(pkgPath string, fn *ast.FuncDecl) string {
	if r := recvTypeName(fn); r != "" {
		return pkgPath + "::" + r + "." + fn.Name.Name
	}
	return pkgPath + "::" + fn.Name.Name
}

// funcKey is the graph key of a resolved function object, matching
// declKey for module declarations.
func funcKey(fn *types.Func) string {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = strings.TrimSuffix(fn.Pkg().Path(), " [tests]")
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if p, name := namedType(sig.Recv().Type()); name != "" {
			if p != "" {
				pkgPath = strings.TrimSuffix(p, " [tests]")
			}
			return pkgPath + "::" + name + "." + fn.Name()
		}
	}
	return pkgPath + "::" + fn.Name()
}
