// Package analysis is the static-contract layer: a suite of custom
// analyzers that machine-check, at compile time, the invariants the rest
// of the repo enforces with runtime tests — the 0 allocs/op hot paths, the
// bit-determinism contract, the MarkDirty-before-mutate window-repair
// protocol, the Stats counter discipline, and the typed-error convention
// of the transport fabric.
//
// The suite deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer / Pass / Diagnostic, analysistest-style want fixtures)
// so each checker can be ported to an x/tools multichecker verbatim; the
// build environment pins no external modules, so the driver underneath is
// a self-contained loader that type-checks the module's packages from
// source and reads standard-library type information from the compiler's
// export data (via `go list -export`).
//
// Contracts are declared in source with `//hotline:` directives:
//
//	//hotline:hotpath           function must not allocate      (hotalloc)
//	//hotline:mutates-rows      function rewrites embedding rows (markdirty)
//	//hotline:stats-writer      function may mutate shard counters (statslock)
//	//hotline:deterministic     package-level: bit-determinism  (detorder)
//	//hotline:typed-errors      package/file-level: %w-wrap      (wraperr)
//	//hotline:allow <analyzer> <reason>   suppress one diagnostic, with
//	                            justification, on the same or next line
//
// cmd/hotline-vet runs every analyzer over the module and exits non-zero
// on any diagnostic; CI gates on it next to gofmt/vet/race.
package analysis
