package analysis

import (
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest: each file under
// testdata/src/<analyzer> carries `// want "regexp"` comments naming the
// diagnostics the analyzer must report on that line; any diagnostic
// without a want, or want without a diagnostic, fails the test. Fixtures
// are invisible to `go list ./...` (testdata is ignored), so they may
// violate every contract freely — and they import real module packages
// (shard.WindowQueue, shard.Stats, internal/par) so the analyzers are
// exercised against the types they key on in production.

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

var (
	loaderOnce   sync.Once
	sharedLoader *Loader
	loaderErr    error
)

// fixtureLoader builds one Loader for all fixture tests — metadata
// harvesting shells out to `go list`, so the tests share the result.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			loaderErr = err
			return
		}
		sharedLoader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return sharedLoader
}

// runFixture checks one analyzer against its want-annotated fixture.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	l := fixtureLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), "hotline/internal/analysis/testdata/"+name)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	type expectation struct {
		file string
		line int
		re   *regexp.Regexp
		got  bool
	}
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.got && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.got = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.got {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestHotallocFixture(t *testing.T)  { runFixture(t, Hotalloc, "hotalloc") }
func TestDetorderFixture(t *testing.T)  { runFixture(t, Detorder, "detorder") }
func TestMarkdirtyFixture(t *testing.T) { runFixture(t, Markdirty, "markdirty") }
func TestStatslockFixture(t *testing.T) { runFixture(t, Statslock, "statslock") }
func TestWraperrFixture(t *testing.T)   { runFixture(t, Wraperr, "wraperr") }

// TestMalformedAllow pins the driver's handling of an //hotline:allow
// without a reason — want comments can't express this one, because any
// trailing text would itself become the reason.
func TestMalformedAllow(t *testing.T) {
	l := fixtureLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "directive"), "hotline/internal/analysis/testdata/directive")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{Hotalloc})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if d := diags[0]; d.Analyzer != "directive" || !regexp.MustCompile(`malformed //hotline:allow`).MatchString(d.Message) {
		t.Errorf("got %s, want a malformed-allow diagnostic", d)
	}
}

// TestVetSelfCheck asserts the repo's own sources satisfy every static
// contract — the test-suite twin of `go run ./cmd/hotline-vet ./...`.
func TestVetSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Vet(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
