package analysis

// All returns the full static-contract suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Hotalloc, Detorder, Markdirty, Statslock, Wraperr}
}

// Vet loads every module package rooted at dir (non-test sources), runs
// the whole suite, and returns the surviving diagnostics in deterministic
// order — the engine behind cmd/hotline-vet and the self-check test.
func Vet(dir string) ([]Diagnostic, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunAnalyzers(pkg, All())
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
	}
	return out, nil
}
