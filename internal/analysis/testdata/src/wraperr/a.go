//hotline:typed-errors

// Package wraperr is the wraperr analyzer's fixture: the directive above
// the package clause scopes the typed-error convention to this file.
package wraperr

import (
	"errors"
	"fmt"
)

var errThing = errors.New("thing") // package-level sentinel: allowed

func untyped(n int) error {
	return fmt.Errorf("boom %d", n) // want "fmt.Errorf without %w builds an untyped error"
}

func wrapped(n int) error {
	return fmt.Errorf("boom %d: %w", n, errThing)
}

func oneOff() error {
	return errors.New("one-off") // want "errors.New inside a function creates an unmatchable one-off error"
}
