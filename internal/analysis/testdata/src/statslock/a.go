// Package statslock is the statslock analyzer's fixture, exercising the
// counter discipline against the real shard.Stats types.
package statslock

import "hotline/internal/shard"

type holder struct {
	stats shard.Stats
	over  shard.OverlapStats
}

func (h *holder) bump() {
	h.stats.Lookups++ // want "field Lookups of shard.Stats written outside"
}

func (h *holder) stale() {
	h.over.StaleRows++ // want "field StaleRows of shard.OverlapStats written outside"
}

func escape(h *holder) *int64 {
	return &h.stats.Lookups // want "field Lookups of shard.Stats written outside"
}

//hotline:stats-writer
func (h *holder) record() {
	h.stats.Lookups++
}

// snapshotDelta mutates a value-typed copy — copies cannot race, so the
// snapshot arithmetic is allowed.
func snapshotDelta(a, b shard.Stats) shard.Stats {
	a.Lookups -= b.Lookups
	return a
}
