// Package detorder is the detorder analyzer's fixture: the package doc
// directive below puts every function under the bit-determinism contract.
//
//hotline:deterministic
package detorder

import (
	"math/rand"
	"sort"
	"time"
)

func iterate(m map[int]int) int {
	var s int
	for k, v := range m { // want "range over a map iterates in nondeterministic order"
		s += k + v
	}
	return s
}

// collect is the recommended remediation itself — a key-collect loop whose
// iteration order never escapes — so it is exempt.
func collect(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func clock() int64 {
	return time.Now().UnixNano() // want "time.Now on a deterministic path"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since on a deterministic path"
}

// meter shows the sanctioned measurement-only escape hatch (no want — a
// surviving diagnostic fails the fixture).
func meter() int64 {
	return time.Now().UnixNano() //hotline:allow detorder wall meter only, never feeds math
}

func draw() float64 {
	return rand.Float64() // want "draws from the unseeded global source"
}

func seeded(r *rand.Rand) float64 {
	return r.Float64() // methods on a seeded *rand.Rand: allowed
}

func construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors: allowed
}
