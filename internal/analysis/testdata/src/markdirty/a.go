// Package markdirty is the markdirty analyzer's fixture, exercising the
// window-repair protocol against the real shard.WindowQueue type.
package markdirty

import "hotline/internal/shard"

//hotline:mutates-rows
func good(q *shard.WindowQueue, rows []int32, w []float32) {
	q.MarkDirty(rows)
	for i := range w {
		w[i] = 0
	}
}

// guarded may run inert guards (len checks that only return) before the
// mark; the protocol is still satisfied.
//
//hotline:mutates-rows
func guarded(q *shard.WindowQueue, rows []int32, w []float32) {
	if len(rows) == 0 {
		return
	}
	q.MarkDirty(rows)
	w[0] = 1
}

//hotline:mutates-rows
func never(w []float32) { // want "never calls WindowQueue.MarkDirty"
	_ = len(w)
}

//hotline:mutates-rows
func unmarked(w []float32) {
	for i := range w { // want "may mutate rows before calling MarkDirty"
		w[i] = 0
	}
}

//hotline:mutates-rows
func late(q *shard.WindowQueue, rows []int32, w []float32) {
	w[0] = 1 // want "may mutate rows before calling MarkDirty"
	q.MarkDirty(rows)
}

//hotline:mutates-rows
func conditional(q *shard.WindowQueue, rows []int32, w []float32) {
	if len(rows) > 0 { // want "calls MarkDirty conditionally"
		q.MarkDirty(rows)
	}
	w[0] = 1
}

func undeclared(q *shard.WindowQueue, rows []int32) { // want "not annotated //hotline:mutates-rows"
	q.MarkDirty(rows)
}
