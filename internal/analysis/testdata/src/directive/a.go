// Package directive holds the malformed-allow case for TestMalformedAllow:
// the comment below names no reason, so the driver reports it.
package directive

//hotline:allow hotalloc
func nothing() {}
