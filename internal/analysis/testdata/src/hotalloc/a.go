// Package hotalloc is the hotalloc analyzer's fixture: each want comment
// pins one allocating construct the contract forbids in hot functions.
package hotalloc

import (
	"errors"
	"fmt"

	"hotline/internal/par"
)

var sink []float32

var errSentinel = errors.New("sentinel") // package-level sentinel: allowed

//hotline:hotpath
func kernel(dst, src []float32) {
	buf := make([]float32, 8) // want "make allocates on a hot path"
	_ = buf
	dst = append(dst, src...)       // want "append may grow its backing array"
	_ = fmt.Sprintf("%d", len(src)) // want "fmt.Sprintf allocates on a hot path"
	_ = errors.New("boom")          // want "errors.New allocates on a hot path"
	sink = []float32{1, 2}          // want "slice literal allocates on a hot path"
	go drain()                      // want "go statement allocates a goroutine"
}

func drain() {}

//hotline:hotpath
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//hotline:hotpath
func box(v int) any {
	return any(v) // want "conversion boxes int into any"
}

func take(vs ...any) {
	_ = vs
}

//hotline:hotpath
func callBox(x int64) {
	take(x) // want "argument boxes int64 into any"
}

type binder struct{}

func (binder) step() {}

//hotline:hotpath
func bind(b binder) func() {
	return b.step // want "method value step binds a closure"
}

// parKernel's closure is exempt: the par.Serial branch means the loop body
// runs inline in the serial case and the closure only materialises on the
// forking path.
//
//hotline:hotpath
func parKernel(w []float32) {
	n := len(w)
	if par.Serial(n, 1) {
		for i := 0; i < n; i++ {
			w[i] = 0
		}
	} else {
		par.ForWork(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				w[i] = 0
			}
		})
	}
}

//hotline:hotpath
func unguarded(w []float32) {
	par.ForWork(len(w), 1, func(lo, hi int) { // want "closure escapes to the heap"
		for i := lo; i < hi; i++ {
			w[i] = 0
		}
	})
}

// amortized shows the sanctioned escape hatch: the trailing allow
// suppresses the append diagnostic (no want here — a surviving
// diagnostic fails the fixture).
//
//hotline:hotpath
func amortized(buf []float32, v float32) []float32 {
	return append(buf, v) //hotline:allow hotalloc growth amortises geometrically
}

// panicArg is cold below the panic: nothing under a panic argument is
// steady-state, so the fmt call is not flagged.
//
//hotline:hotpath
func panicArg(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative: %d", n))
	}
}

func cold() {
	//hotline:allow hotalloc this function is not hot // want "unused //hotline:allow hotalloc"
	_ = len(sink)
}

//hotline:frobnicate // want "unknown directive"
func typo() {}
