package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeObject resolves a call expression's static callee (nil for
// builtins, function-typed values and dynamic interface dispatch).
func calleeObject(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgCall reports whether the call statically targets pkgPath.name
// (package-level function or method, matched on the defining package).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := calleeObject(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// isBuiltinCall reports whether the call invokes the named builtin
// (append, make, new, panic, ...).
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// namedType unwraps aliases and pointers and returns the named type's
// defining package path and name ("", "" for unnamed types).
func namedType(t types.Type) (pkgPath, name string) {
	if t == nil {
		return "", ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", ""
	}
	return n.Obj().Pkg().Path(), n.Obj().Name()
}

// isMapType reports whether the expression's static type is a map.
func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// pointerShaped reports whether values of t convert to an interface
// without allocating: the runtime stores pointers, channels, maps, funcs
// and unsafe pointers directly in the interface word.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// enclosingFuncs returns every function declaration in the file, mapping
// each to its syntax for body walks.
func fileFuncs(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			out = append(out, fn)
		}
	}
	return out
}

// recvTypeName returns the receiver's named type ("" for functions).
func recvTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// isTestFile reports whether the file's position is a _test.go file —
// augmented loads fold test syntax in, and most contracts exempt it.
func isTestFile(p *Pass, f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}
