package analysis

import (
	"path/filepath"
	"testing"
)

// repoRoot resolves the module root from this package's directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestHotpathAllocGateCoverage asserts the two halves of the hot-path
// contract cover the same set: every //hotline:hotpath function is
// reachable from at least one testing.AllocsPerRun-gated test, so the
// static check never certifies a kernel the runtime gates don't measure.
func TestHotpathAllocGateCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	uncovered, err := HotpathCoverage(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range uncovered {
		t.Errorf("%s: //hotline:hotpath function %s is not reachable from any testing.AllocsPerRun gate", fn.Pos, fn.Key)
	}
	if len(uncovered) > 0 {
		t.Log("add an alloc-gated test that exercises the kernel, or drop the annotation")
	}
}
