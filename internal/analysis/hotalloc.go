package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Hotalloc enforces the 0 allocs/op contract on functions annotated
// //hotline:hotpath: the constructs the Go compiler lowers to runtime
// allocations must not appear in them. The runtime side of the same
// contract is the testing.AllocsPerRun gates; this is its compile-time
// shadow, covering every call path instead of the ones a test executes.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid allocating constructs (escaping closures, map/slice literals, " +
		"make/append/new, fmt calls, string building, interface boxing, go " +
		"statements) in //hotline:hotpath functions",
	Run: runHotalloc,
}

func runHotalloc(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, fn := range fileFuncs(f) {
			if fn.Body == nil || !FuncDirective(fn, "hotpath") {
				continue
			}
			w := &hotallocWalker{pass: pass, serialGuarded: hasSerialGuard(pass.Info, fn.Body)}
			w.walk(fn.Body, nil)
		}
	}
	return nil
}

// hotallocWalker descends one hot function's body keeping the ancestor
// stack it needs for the two structural exemptions: closures under a
// par.Serial branch, and anything inside a panic argument (the panic path
// is cold by definition).
type hotallocWalker struct {
	pass *Pass
	// serialGuarded is set when the function body contains a branch on
	// par.Serial / par.Workers: the kernel has a serial arm that runs the
	// loop body inline, so its par closures only materialise on the forking
	// path — where the fork itself dominates the closure's cost. Both
	// guard shapes count: `if par.Serial { range } else { par.ForWork }`
	// and the early-return form `if par.Serial { range; return }` followed
	// by a top-level par.ForWork.
	serialGuarded bool
}

// parRunner names the internal/par entry points whose closure argument is
// exempt when a par.Serial branch guards the call: the serial case runs
// the loop body directly, so the closure only materialises when the
// kernel actually forks (where the fork itself dominates the cost).
const parPkg = "hotline/internal/par"

func (w *hotallocWalker) walk(n ast.Node, stack []ast.Node) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *ast.CallExpr:
		if isBuiltinCall(w.pass.Info, x, "panic") {
			// Cold path: nothing under a panic argument is steady-state.
			return
		}
		w.checkCall(x, stack)
	case *ast.FuncLit:
		if !w.closureExempt(x, stack) {
			w.pass.Report(x.Pos(), "closure escapes to the heap on a hot path; run the body directly under a par.Serial branch (see par.ForWork's contract)")
		}
	case *ast.CompositeLit:
		if t := w.pass.TypeOf(x); t != nil {
			switch t.Underlying().(type) {
			case *types.Map:
				w.pass.Report(x.Pos(), "map literal allocates on a hot path; hoist into reusable scratch")
			case *types.Slice:
				w.pass.Report(x.Pos(), "slice literal allocates on a hot path; hoist into reusable scratch")
			}
		}
	case *ast.UnaryExpr:
		if cl, ok := x.X.(*ast.CompositeLit); ok && x.Op.String() == "&" {
			w.pass.Report(cl.Pos(), "&composite literal allocates on a hot path; reuse a per-instance value")
		}
	case *ast.GoStmt:
		w.pass.Report(x.Pos(), "go statement allocates a goroutine on a hot path; use the persistent workers in internal/par")
	case *ast.BinaryExpr:
		if x.Op.String() == "+" {
			if t := w.pass.TypeOf(x); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					if w.pass.Info.Types[x].Value == nil { // non-constant concatenation
						w.pass.Report(x.Pos(), "string concatenation allocates on a hot path")
					}
				}
			}
		}
	case *ast.SelectorExpr:
		w.checkMethodValue(x, stack)
	}
	stack = append(stack, n)
	for _, c := range childNodes(n) {
		w.walk(c, stack)
	}
}

func (w *hotallocWalker) checkCall(call *ast.CallExpr, stack []ast.Node) {
	info := w.pass.Info
	switch {
	case isBuiltinCall(info, call, "make"):
		w.pass.Report(call.Pos(), "make allocates on a hot path; preallocate in the constructor or grow a reused buffer")
		return
	case isBuiltinCall(info, call, "new"):
		w.pass.Report(call.Pos(), "new allocates on a hot path; reuse a per-instance value")
		return
	case isBuiltinCall(info, call, "append"):
		w.pass.Report(call.Pos(), "append may grow its backing array on a hot path; reslice a preallocated buffer (tensor.Matrix.Resize-style growth needs an //hotline:allow with its amortisation argument)")
		return
	}
	// Type conversions that copy: string <-> []byte / []rune.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.TypeOf(call.Args[0])
		if to != nil && from != nil && isStringBytesConv(to, from) {
			w.pass.Report(call.Pos(), "string/byte-slice conversion copies on a hot path")
			return
		}
		if types.IsInterface(to.Underlying()) && boxes(from) {
			w.pass.Report(call.Pos(), "conversion boxes %s into %s on a hot path", from, to)
			return
		}
	}
	if fn := calleeObject(info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			w.pass.Report(call.Pos(), "fmt.%s allocates on a hot path", fn.Name())
			return
		case "errors":
			if fn.Name() == "New" {
				w.pass.Report(call.Pos(), "errors.New allocates on a hot path; return a package-level sentinel")
				return
			}
		}
	}
	w.checkBoxing(call)
}

// checkBoxing flags arguments whose concrete values box into interface
// parameters — each such box is one heap allocation per call.
func (w *hotallocWalker) checkBoxing(call *ast.CallExpr) {
	sigT := w.pass.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := w.pass.TypeOf(arg)
		if at == nil || !boxes(at) {
			continue
		}
		if tv, ok := w.pass.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() != constant.String {
			continue // small constants are served from the runtime's static boxes
		}
		w.pass.Report(arg.Pos(), "argument boxes %s into %s on a hot path", at, pt)
	}
}

// paramType returns the parameter type argument i binds to, flattening
// variadic calls (nil when the slice is passed through with ... or the
// index is out of range).
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if ellipsis {
			return nil
		}
		if sl, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// checkMethodValue flags bound method values (s.Method used as a value):
// each binds receiver and method into a fresh closure. Hot code binds
// them once at construction (ShardedBag.fetchFn's pattern).
func (w *hotallocWalker) checkMethodValue(sel *ast.SelectorExpr, stack []ast.Node) {
	s, ok := w.pass.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	if len(stack) > 0 {
		if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
			return // ordinary method call, not a bound value
		}
	}
	w.pass.Report(sel.Pos(), "method value %s binds a closure on a hot path; bind once in the constructor", sel.Sel.Name)
}

// boxes reports whether converting a value of t to an interface
// allocates: concrete, not already an interface, and not pointer-shaped.
func boxes(t types.Type) bool {
	if t == nil || types.IsInterface(t.Underlying()) {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !pointerShaped(t)
}

func isStringBytesConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteRuneSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteRuneSlice(from)) || (isByteRuneSlice(to) && isStr(from))
}

// closureExempt reports whether a closure is the guarded par argument: an
// argument of a par.ForWork / par.Do / par.Go call that sits under an if
// whose condition consults par.Serial.
func (w *hotallocWalker) closureExempt(lit *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	call, ok := parent.(*ast.CallExpr)
	if !ok {
		return false
	}
	if ast.Unparen(call.Fun) == lit {
		return true // immediately invoked: runs inline, does not escape
	}
	if !isPkgCall(w.pass.Info, call, parPkg, "ForWork", "Do", "Go") {
		return false
	}
	if w.serialGuarded {
		return true
	}
	for _, anc := range stack {
		if ifs, ok := anc.(*ast.IfStmt); ok && condGuardsSerial(w.pass.Info, ifs.Cond) {
			return true
		}
	}
	return false
}

// hasSerialGuard reports whether a function body branches on the fork
// decision anywhere (see hotallocWalker.serialGuarded).
func hasSerialGuard(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok && condGuardsSerial(info, ifs.Cond) {
			found = true
		}
		return !found
	})
	return found
}

// condGuardsSerial reports whether an if condition consults the fork
// decision — par.Serial or par.Workers — meaning the enclosing branch
// structure has a serial arm that runs the loop body inline, so the
// closure only materialises when the kernel actually forks.
func condGuardsSerial(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPkgCall(info, call, parPkg, "Serial", "Workers") {
			found = true
		}
		return !found
	})
	return found
}

// childNodes enumerates a node's direct children in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
