package analysis

import (
	"go/ast"
)

// shardPkg is the package whose protocol types the contract analyzers
// key on.
const shardPkg = "hotline/internal/shard"

// Markdirty enforces the window-repair protocol from the depth-k
// prefetch pipeline: a sparse update must announce the rows it is about
// to rewrite (WindowQueue.MarkDirty joins any open window that staged
// one, so no in-flight fetch races the write, and the consuming Forward
// delta-repairs them) BEFORE the first mutation. Statically:
//
//   - a function annotated //hotline:mutates-rows must call MarkDirty as
//     its first effectful statement, unconditionally;
//   - a function that calls WindowQueue.MarkDirty outside package shard
//     must carry the annotation, so the mutator set stays declared.
var Markdirty = &Analyzer{
	Name: "markdirty",
	Doc: "require //hotline:mutates-rows functions to call " +
		"WindowQueue.MarkDirty before the first row mutation",
	Run: runMarkdirty,
}

func runMarkdirty(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, fn := range fileFuncs(f) {
			if fn.Body == nil {
				continue
			}
			annotated := FuncDirective(fn, "mutates-rows")
			hasCall := containsMarkDirty(pass, fn.Body)
			switch {
			case annotated:
				checkMarkDirtyOrder(pass, fn)
			case hasCall && pass.Pkg.Path() != shardPkg:
				pass.Report(fn.Pos(), "%s calls WindowQueue.MarkDirty but is not annotated //hotline:mutates-rows; declare the mutation so the protocol check covers it", fn.Name.Name)
			}
		}
	}
	return nil
}

// isMarkDirtyCall reports whether the call is WindowQueue.MarkDirty.
func isMarkDirtyCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "MarkDirty" {
		return false
	}
	pkg, name := namedType(pass.TypeOf(sel.X))
	return pkg == shardPkg && name == "WindowQueue"
}

func containsMarkDirty(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isMarkDirtyCall(pass, call) {
			found = true
		}
		return !found
	})
	return found
}

// checkMarkDirtyOrder verifies the annotated function calls MarkDirty
// unconditionally before anything that could mutate rows. The check is
// positional over the top-level statements: everything before the
// MarkDirty statement must be inert (declarations, call-free assignments,
// guard ifs that only panic or return), and the MarkDirty call itself
// must be a top-level statement — a conditional or loop-nested mark
// leaves some path writing unannounced.
func checkMarkDirtyOrder(pass *Pass, fn *ast.FuncDecl) {
	for _, stmt := range fn.Body.List {
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok && isMarkDirtyCall(pass, call) {
				return // protocol satisfied
			}
		}
		if containsMarkDirtyStmt(pass, stmt) {
			pass.Report(stmt.Pos(), "%s calls MarkDirty conditionally; the window-repair protocol requires an unconditional top-level call before the first row write", fn.Name.Name)
			return
		}
		if !inertBeforeMark(pass, stmt) {
			pass.Report(stmt.Pos(), "%s (annotated //hotline:mutates-rows) may mutate rows before calling MarkDirty; move the MarkDirty call above this statement", fn.Name.Name)
			return
		}
	}
	pass.Report(fn.Pos(), "%s is annotated //hotline:mutates-rows but never calls WindowQueue.MarkDirty; open prefetch windows would serve rows this function rewrites", fn.Name.Name)
}

func containsMarkDirtyStmt(pass *Pass, stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isMarkDirtyCall(pass, call) {
			found = true
		}
		return !found
	})
	return found
}

// inertBeforeMark reports whether a statement can run before MarkDirty
// without risking a row write: declarations, assignments whose right side
// calls nothing but len/cap/conversions, and guard ifs whose bodies only
// panic or return.
func inertBeforeMark(pass *Pass, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.DeclStmt:
		return true
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
				return false // an index/field store could be the row write itself
			}
		}
		for _, rhs := range s.Rhs {
			if !inertExpr(pass, rhs) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil && !inertBeforeMark(pass, s.Init) {
			return false
		}
		if !inertExpr(pass, s.Cond) {
			return false
		}
		if s.Else != nil {
			return false
		}
		for _, b := range s.Body.List {
			switch bs := b.(type) {
			case *ast.ReturnStmt:
			case *ast.ExprStmt:
				call, ok := ast.Unparen(bs.X).(*ast.CallExpr)
				if !ok || !isBuiltinCall(pass.Info, call, "panic") {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	return false
}

// inertExpr reports whether evaluating the expression cannot mutate rows:
// no calls except builtins and conversions.
func inertExpr(pass *Pass, e ast.Expr) bool {
	if e == nil {
		return true
	}
	inert := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return inert
		}
		if tv, isConv := pass.Info.Types[call.Fun]; isConv && tv.IsType() {
			return inert
		}
		if isBuiltinCall(pass.Info, call, "len") || isBuiltinCall(pass.Info, call, "cap") {
			return inert
		}
		inert = false
		return false
	})
	return inert
}
