package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static contract check. The struct mirrors
// golang.org/x/tools/go/analysis.Analyzer (the subset this repo needs) so
// the checkers port to an x/tools multichecker without edits.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //hotline:allow directives.
	Name string
	// Doc is the one-paragraph contract description shown by -help.
	Doc string
	// Run reports the package's violations through pass.Report.
	Run func(pass *Pass) error
}

// A Diagnostic is one contract violation at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way go vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees (comments retained). For the
	// vet gate these are the non-test sources; test files carry no
	// hot-path or determinism contracts.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Report records one violation. Suppression by //hotline:allow and
// deterministic ordering are applied by the driver afterwards.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of an expression (nil if untypeable).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// directivePrefix introduces every contract annotation.
const directivePrefix = "//hotline:"

// knownDirectives is the accepted verb set; anything else under the
// //hotline: prefix is reported as a malformed directive by the driver.
var knownDirectives = map[string]bool{
	"hotpath":       true,
	"mutates-rows":  true,
	"stats-writer":  true,
	"deterministic": true,
	"typed-errors":  true,
	"allow":         true,
}

// hasDirective reports whether the comment group carries the named
// //hotline: directive (go directive style: no space after //).
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if directiveName(c.Text) == name {
			return true
		}
	}
	return false
}

// directiveName extracts the verb of a //hotline: comment ("" if the
// comment is not a directive).
func directiveName(text string) string {
	if !strings.HasPrefix(text, directivePrefix) {
		return ""
	}
	rest := text[len(directivePrefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// FuncDirective reports whether the function declaration is annotated
// with the named directive.
func FuncDirective(fn *ast.FuncDecl, name string) bool {
	return hasDirective(fn.Doc, name)
}

// PkgDirective reports whether any file's package doc carries the named
// directive (the convention places it in the package's doc.go).
func PkgDirective(files []*ast.File, name string) bool {
	for _, f := range files {
		if hasDirective(f.Doc, name) {
			return true
		}
	}
	return false
}

// FileDirective reports whether a single file is annotated: the directive
// sits in the file's doc comment or in any comment group above the first
// declaration (for files that scope a package-wide contract down, e.g.
// //hotline:typed-errors on the transport/codec files only).
func FileDirective(f *ast.File, name string) bool {
	if hasDirective(f.Doc, name) {
		return true
	}
	var firstDecl token.Pos = token.NoPos
	if len(f.Decls) > 0 {
		firstDecl = f.Decls[0].Pos()
	}
	for _, cg := range f.Comments {
		if firstDecl.IsValid() && cg.Pos() > firstDecl {
			break
		}
		if hasDirective(cg, name) {
			return true
		}
	}
	return false
}

// an allowance is one parsed //hotline:allow comment.
type allowance struct {
	analyzer string
	reason   string
	file     string
	line     int // line the comment sits on; covers this line and the next
	used     bool
}

// allowIndex collects every //hotline:allow in a file set and answers
// whether a diagnostic is suppressed. A comment suppresses diagnostics of
// its named analyzer on its own line (trailing comment) or the line
// directly below (leading comment).
type allowIndex struct {
	byFileLine map[string][]*allowance
	malformed  []Diagnostic
}

func newAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	ix := &allowIndex{byFileLine: make(map[string][]*allowance)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name := directiveName(c.Text)
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				if !knownDirectives[name] {
					ix.malformed = append(ix.malformed, Diagnostic{
						Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("unknown directive %q (known: hotpath, mutates-rows, stats-writer, deterministic, typed-errors, allow)", directivePrefix+name),
					})
					continue
				}
				if name != "allow" {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, directivePrefix+"allow"))
				if len(fields) < 2 {
					ix.malformed = append(ix.malformed, Diagnostic{
						Pos: pos, Analyzer: "directive",
						Message: "malformed //hotline:allow: want \"//hotline:allow <analyzer> <reason>\" (the reason is the justification the review reads)",
					})
					continue
				}
				a := &allowance{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					file:     pos.Filename,
					line:     pos.Line,
				}
				ix.byFileLine[a.file] = append(ix.byFileLine[a.file], a)
			}
		}
	}
	return ix
}

// suppressed reports (and marks) whether an allowance covers the diagnostic.
// A same-line (trailing) allowance wins over one on the line above, so
// adjacent lines that each carry their own trailing allow are accounted
// separately — the leading-comment form only covers lines without one.
func (ix *allowIndex) suppressed(d Diagnostic) bool {
	var above *allowance
	for _, a := range ix.byFileLine[d.Pos.Filename] {
		if a.analyzer != d.Analyzer {
			continue
		}
		if d.Pos.Line == a.line {
			a.used = true
			return true
		}
		if d.Pos.Line == a.line+1 && above == nil {
			above = a
		}
	}
	if above != nil {
		above.used = true
		return true
	}
	return false
}

// unused returns a diagnostic for every allowance that suppressed nothing
// — stale justifications rot, so the vet gate flags them for removal.
func (ix *allowIndex) unused() []Diagnostic {
	var out []Diagnostic
	for _, as := range ix.byFileLine {
		for _, a := range as {
			if !a.used {
				out = append(out, Diagnostic{
					Pos:      token.Position{Filename: a.file, Line: a.line, Column: 1},
					Analyzer: "directive",
					Message:  fmt.Sprintf("unused //hotline:allow %s (%s): no diagnostic here — remove it", a.analyzer, a.reason),
				})
			}
		}
	}
	return out
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer —
// the deterministic output contract of cmd/hotline-vet.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// RunAnalyzers applies the analyzers to one loaded package, returning the
// surviving (non-suppressed) diagnostics plus any malformed or unused
// directives, in deterministic order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	ix := newAllowIndex(pkg.Fset, pkg.Files)
	out := ix.malformed
	for _, d := range raw {
		if !ix.suppressed(d) {
			out = append(out, d)
		}
	}
	out = append(out, ix.unused()...)
	sortDiagnostics(out)
	return out, nil
}
