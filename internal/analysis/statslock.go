package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Statslock enforces the counter discipline on shard.Stats and
// shard.OverlapStats: their fields are shared, mutex-guarded state, so a
// write anywhere except the declared accounting functions (annotated
// //hotline:stats-writer — the Record*/note*/Preload family, which hold
// the service mutex) is either a data race or a counter that silently
// diverges from the conformance suite's cross-transport equality
// invariant. Mutating a value-typed local copy (snapshot arithmetic like
// Stats.Sub) is always fine — copies cannot race.
var Statslock = &Analyzer{
	Name: "statslock",
	Doc: "restrict shard.Stats / shard.OverlapStats field writes to " +
		"//hotline:stats-writer functions (or value-typed local copies)",
	Run: runStatslock,
}

// statsTypes are the guarded counter blocks.
var statsTypes = map[string]bool{"Stats": true, "OverlapStats": true}

func runStatslock(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, fn := range fileFuncs(f) {
			if fn.Body == nil {
				continue
			}
			writer := FuncDirective(fn, "stats-writer")
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						checkStatsWrite(pass, fn, writer, lhs, s.Pos())
					}
				case *ast.IncDecStmt:
					checkStatsWrite(pass, fn, writer, s.X, s.Pos())
				case *ast.UnaryExpr:
					if s.Op == token.AND {
						// &stats.Field escapes the guarded cell; treat an
						// address-of like a write.
						checkStatsWrite(pass, fn, writer, s.X, s.Pos())
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkStatsWrite reports a write through lhs when it lands on a field of
// a guarded stats block in shared state.
func checkStatsWrite(pass *Pass, fn *ast.FuncDecl, writer bool, lhs ast.Expr, pos token.Pos) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkg, name := namedType(pass.TypeOf(sel.X))
	if pkg != shardPkg || !statsTypes[name] {
		return
	}
	if writer {
		return
	}
	if isValueLocal(pass, fn, sel.X) {
		return // mutating a copy; cannot race the shared counters
	}
	pass.Report(pos, "field %s of shard.%s written outside a //hotline:stats-writer function; route the count through the Record*/note*/Reset* accounting methods", sel.Sel.Name, name)
}

// isValueLocal reports whether the base expression is a value-typed
// (non-pointer) variable declared within the function — receiver, param
// or local. Such a variable holds a copy of the counters.
func isValueLocal(pass *Pass, fn *ast.FuncDecl, base ast.Expr) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || obj.Type() == nil {
		return false
	}
	if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
		return false
	}
	return obj.Pos() >= fn.Pos() && obj.Pos() <= fn.End()
}
