module hotline

go 1.24
