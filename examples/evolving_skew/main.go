// Evolving skew (paper §III challenge 3, Figure 9): user behaviour drifts
// day to day, so a statically profiled hot set goes stale. The Hotline
// accelerator's EAL re-learns online and recovers the popular-input
// fraction; a frozen FAE-style profile decays.
//
//	go run ./examples/evolving_skew
package main

import (
	"fmt"

	"hotline"
)

func main() {
	cfg := hotline.CriteoTerabyte()
	cfg.Samples = 2048

	// Learn the hot set on day 0 with a scaled-down EAL.
	acfg := hotline.DefaultAcceleratorConfig()
	acfg.EAL.SizeBytes = 16 << 10 // dataset rows are ~4000x downscaled
	acfg.EAL.Banks = 16
	staleAcc := hotline.NewAccelerator(acfg)
	gen := hotline.NewGenerator(cfg)
	for i := 0; i < 4; i++ {
		staleAcc.LearnBatch(gen.NextBatch(512))
	}

	fmt.Println("popular-input fraction classified by the EAL:")
	fmt.Println("day | static day-0 profile | online re-learned")
	for day := 0; day <= 6; day += 2 {
		dayGen := hotline.NewGenerator(cfg)
		dayGen.SetDay(day)
		probe := dayGen.NextBatch(1024)

		stale := staleAcc.Classify(probe).PopularFraction()

		fresh := hotline.NewAccelerator(acfg)
		learnGen := hotline.NewGenerator(cfg)
		learnGen.SetDay(day)
		for i := 0; i < 4; i++ {
			fresh.LearnBatch(learnGen.NextBatch(512))
		}
		relearned := fresh.Classify(probe).PopularFraction()

		fmt.Printf("%3d | %19.1f%% | %16.1f%%\n", day, stale*100, relearned*100)
	}
	fmt.Println("\nstatic profiles decay with drift; Hotline's periodic learning phase keeps up")
	fmt.Println("(FAE's offline profiler also costs ~15% extra training time, paper §VII-B2).")
}
