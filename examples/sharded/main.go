// Sharded embedding service: functional Hotline training on row-wise
// sharded tables with per-node hot-entry device caches. Training is
// bit-identical to the single-node executor for every node count (the
// determinism contract); what changes — and what this example prints — is
// the *measured* topology traffic: device-cache hit-rates and all-to-all
// gather/scatter volume per node count.
//
//	go run ./examples/sharded
package main

import (
	"fmt"

	"hotline"
)

func main() {
	cfg := hotline.CriteoKaggle()
	cfg.Samples = 2048
	const iters, batch, seed = 8, 128, 42

	// Single-node reference run.
	ref := hotline.NewHotlineTrainer(hotline.NewModel(cfg, seed), 0.1)
	gen := hotline.NewGenerator(cfg)
	for i := 0; i < iters; i++ {
		ref.Step(gen.NextBatch(batch))
	}

	fmt.Println("Hotline µ-batch training on sharded embedding tables")
	fmt.Printf("%-6s %-12s %-10s %-12s %-12s %s\n",
		"nodes", "cache hit", "remote", "gather MB", "scatter MB", "state vs 1-node")
	for _, nodes := range []int{1, 2, 4, 8} {
		svc := hotline.NewShardService(hotline.ShardConfig{
			Nodes:      nodes,
			CacheBytes: hotline.DefaultShardCacheBytes(cfg),
			RowBytes:   int64(cfg.EmbedDim) * 4,
			Policy:     hotline.CacheSRRIP,
		}, nil)
		tr := hotline.NewHotlineShardedTrainer(hotline.NewModel(cfg, seed), 0.1, svc)
		g := hotline.NewGenerator(cfg)
		for i := 0; i < iters; i++ {
			tr.Step(g.NextBatch(batch))
		}
		st := svc.Snapshot()
		parity := "bit-identical"
		if d := hotline.MaxModelStateDiff(ref.M, tr.M); d != 0 {
			parity = fmt.Sprintf("DIVERGED %g", d)
		}
		fmt.Printf("%-6d %-12s %-10s %-12.2f %-12.2f %s\n",
			nodes,
			fmt.Sprintf("%.1f%%", st.HitRate()*100),
			fmt.Sprintf("%.1f%%", st.RemoteFrac()*100),
			float64(st.GatherBytes)/(1<<20), float64(st.ScatterBytes)/(1<<20),
			parity)
	}

	// The measured statistics feed the timing models directly.
	fmt.Println("\nMeasured vs analytic multi-node Hotline iteration (Criteo Kaggle):")
	for _, nodes := range []int{2, 4} {
		sys := hotline.PaperCluster(nodes)
		measured := hotline.NewShardedWorkload(hotline.CriteoKaggle(), 4096*nodes, sys, 0)
		analytic := hotline.NewWorkload(hotline.CriteoKaggle(), 4096*nodes, sys)
		hl := hotline.NewHotlinePipeline()
		fmt.Printf("  %d nodes: measured %v  analytic %v  (cache hit %.1f%%)\n",
			nodes, hl.Iteration(measured).Total, hl.Iteration(analytic).Total,
			measured.Shard.HitRate*100)
	}
}
