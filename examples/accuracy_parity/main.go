// Accuracy parity (paper §IV-A, Figure 18, Table V): train the baseline
// executor and the Hotline µ-batch executor from identical initial weights
// on identical data streams, and show that losses, metrics and parameters
// stay together — Hotline reorders execution, not mathematics.
//
//	go run ./examples/accuracy_parity
package main

import (
	"fmt"

	"hotline"
)

func main() {
	for _, cfg := range []hotline.DatasetConfig{hotline.CriteoKaggle(), hotline.TaobaoAlibaba()} {
		// Shrink the dense towers so this demo runs in seconds.
		cfg.BotMLP = clampWidths(cfg.BotMLP, 64, cfg.DenseFeatures, cfg.EmbedDim)
		cfg.TopMLP = clampWidths(cfg.TopMLP, 64, cfg.TopMLP[0], 1)

		rep := hotline.RunParity(cfg, 7,
			hotline.TrainRunConfig{BatchSize: 64, Iters: 40, EvalSize: 512})
		fmt.Printf("%s:\n", cfg.Name)
		fmt.Printf("  baseline  %v\n", rep.Baseline)
		fmt.Printf("  hotline   %v\n", rep.Hotline)
		fmt.Printf("  max parameter divergence: %.3g (float reordering only)\n", rep.MaxStateDiff)
		fmt.Printf("  popular µ-batch share:    %.1f%%\n\n", rep.PopularFrac*100)
	}
	fmt.Println("Eq. 5: L_hotline = L_popular + L_non-popular = L_baseline — identical gradients.")
}

// clampWidths caps hidden widths while preserving the first/last sizes.
func clampWidths(sizes []int, cap, first, last int) []int {
	out := make([]int, len(sizes))
	for i, s := range sizes {
		if s > cap {
			s = cap
		}
		out[i] = s
	}
	out[0] = first
	out[len(out)-1] = last
	return out
}
