// Experiment sweep: regenerate a slice of the paper's evaluation on a
// bounded worker pool. RunAllExperiments fans experiments out across
// workers, captures per-experiment failures without aborting the sweep, and
// returns tables in stable id order — byte-identical to serial runs.
//
//	go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"time"

	"hotline"
)

func main() {
	// The sweep already saturates the cores with whole experiments, so keep
	// the per-kernel sharding at one worker (cmd/hotline-bench's auto mode
	// makes the same choice to avoid NumCPU² oversubscription).
	hotline.Parallelism(1)
	hotline.SetExperimentTrainIters(12) // keep the functional experiments brisk

	// A representative slice: ISA table, two timing figures, one functional
	// accuracy figure. RunAllExperiments(ctx, nil, 0) sweeps the entire
	// registry instead.
	ids := []string{"tab1", "fig19", "fig26", "fig18"}

	start := time.Now()
	results := hotline.SweepExperiments(context.Background(), ids, 0)
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("%-6s FAILED: %v\n", r.ID, r.Err)
			continue
		}
		fmt.Printf("%-6s %-55s %3d rows  %8s\n",
			r.ID, r.Title, len(r.Table.Rows), r.Duration.Round(time.Millisecond))
	}
	fmt.Printf("\nsweep wall time: %s with %d kernel worker(s)\n",
		time.Since(start).Round(time.Millisecond), hotline.NumWorkers())
	fmt.Println("cmd/hotline-bench runs the full registry the same way (-json for a report).")
}
