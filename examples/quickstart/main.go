// Quickstart: train a scaled Criteo Kaggle DLRM with the Hotline µ-batch
// executor, then time one simulated iteration of every training pipeline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"hotline"
)

func main() {
	// 0. Use every core: the tensor/embedding kernels shard batches across
	// workers and the Hotline executor runs its two µ-batches concurrently,
	// with bit-identical results for any worker count.
	hotline.Parallelism(0) // 0 = one worker per CPU core
	fmt.Printf("parallelism: %d worker(s)\n\n", hotline.NumWorkers())

	// 1. Pick a workload (paper Table II shape, ~1000x downscaled rows).
	cfg := hotline.CriteoKaggle()
	fmt.Printf("dataset: %s — %d sparse features, %d paper-scale rows\n",
		cfg.Name, cfg.NumTables, cfg.TotalFullRows())

	// 2. Functional training with the Hotline executor: the accelerator's
	// EAL learns the hot embeddings, every mini-batch splits into popular
	// and non-popular µ-batches, and updates are at parity with baseline.
	m := hotline.NewModel(cfg, 42)
	trainer := hotline.NewHotlineTrainer(m, 0.1)
	curve := hotline.RunTraining(trainer, hotline.NewGenerator(cfg),
		hotline.TrainRunConfig{BatchSize: 64, Iters: 50, EvalEvery: 10, EvalSize: 512})
	for _, p := range curve {
		fmt.Printf("  iter %3d  loss %.4f  %v\n", p.Iteration, p.Loss, p.Metrics)
	}
	fmt.Printf("  popular inputs classified by the EAL: %.1f%%\n\n",
		trainer.PopularFraction()*100)

	// 3. Performance simulation: one steady-state iteration per pipeline
	// on the paper's 4xV100 server.
	w := hotline.NewWorkload(cfg, 4096, hotline.PaperSystem(4))
	fmt.Println("simulated 4-GPU iteration (batch 4096):")
	base := hotline.NewIntelDLRMPipeline().Iteration(w)
	for _, p := range hotline.Pipelines() {
		st := p.Iteration(w)
		if st.OOM {
			fmt.Printf("  %-18s OOM\n", p.Name())
			continue
		}
		fmt.Printf("  %-18s %8s  (%.2fx vs Intel DLRM)\n",
			p.Name(), st.Total, hotline.Speedup(base, st))
	}
}
