// Online serving: the read-only predict path over the sharded embedding
// service, driven by the open-loop load harness. The example runs the
// serving story end to end —
//
//  1. a mixed run trains and serves the SAME weights concurrently, and the
//     trained state stays bit-identical to a train-only run (serving never
//     perturbs training: no prefetch window consumed, no parameter touched);
//
//  2. the load harness replays a drifting Zipf request corpus at a target
//     QPS and reports exact latency percentiles plus the serve-side traffic
//     counters (request traffic warms the shared device caches, booked
//     separately from training traffic).
//
//     go run ./examples/serve
package main

import (
	"fmt"
	"time"

	"hotline"
)

func main() {
	cfg := hotline.CriteoKaggle()
	cfg.Samples = 2048
	const iters, batch, seed = 8, 128, 42

	newStack := func() (*hotline.Model, *hotline.ShardService) {
		m := hotline.NewModel(cfg, seed)
		svc := hotline.NewShardService(hotline.ShardConfig{
			Nodes: 4, CacheBytes: 1 << 20, RowBytes: int64(cfg.EmbedDim) * 4,
		}, nil)
		return m, svc
	}

	// Train-only reference.
	mRef, svcRef := newStack()
	ref := hotline.NewHotlineShardedTrainer(mRef, 0.1, svcRef)
	gen := hotline.NewGenerator(cfg)
	for i := 0; i < iters; i++ {
		ref.Step(gen.NextBatch(batch))
	}

	// Mixed: the same training stream with predict traffic interleaved on
	// the same weights through the server's read path.
	mMix, svcMix := newStack()
	tr := hotline.NewHotlineShardedTrainer(mMix, 0.1, svcMix)
	srv := hotline.NewServer(mMix, 2)
	corpus := hotline.BuildServeCorpus(cfg, 2, 8, 32)
	gen = hotline.NewGenerator(cfg)
	for i := 0; i < iters; i++ {
		b := gen.NextBatch(batch)
		srv.Train(func() { tr.Step(b) })
		srv.Predict(corpus.Requests[i%corpus.Len()].Batch)
	}
	parity := "bit-identical"
	if d := hotline.MaxModelStateDiff(mRef, mMix); d != 0 {
		parity = fmt.Sprintf("DIVERGED %g", d)
	}
	reqs, samples := srv.Served()
	fmt.Printf("mixed train+serve: %d steps, %d predicts (%d samples) -> training state %s\n",
		iters, reqs, samples, parity)

	// Load harness: open-loop replay at a fixed rate.
	svcMix.ResetServeStats()
	trainLookups := svcMix.Snapshot().Lookups
	rep := hotline.RunLoad(srv, corpus, hotline.LoadConfig{QPS: 100, Requests: 64, Players: 2})
	fmt.Printf("\nload run: %d requests at %g QPS -> %.0f req/s achieved in %v\n",
		rep.Requests, rep.QPS, rep.Throughput, rep.Wall.Round(time.Millisecond))
	fmt.Printf("latency  p50 %v  p90 %v  p99 %v  p999 %v\n",
		rep.Latency.P50.Round(time.Microsecond), rep.Latency.P90.Round(time.Microsecond),
		rep.Latency.P99.Round(time.Microsecond), rep.Latency.P999.Round(time.Microsecond))
	sv := svcMix.ServeSnapshot()
	fmt.Printf("serve traffic: %.1f%% cache hit, %.1f%% gathered (training counters untouched: %d -> %d lookups)\n",
		100*sv.HitRate(), 100*sv.GatherFrac(),
		trainLookups, svcMix.Snapshot().Lookups)
}
