// Multi-node scaling (paper §VII-H, Figure 30): large synthetic models on
// 1/2/4-node clusters. HugeCTR's GPU-only mode OOMs until aggregate HBM
// fits the embeddings and then pays cross-node all-to-all; Hotline keeps
// embeddings in host DRAM and trains at any scale.
//
//	go run ./examples/multinode
package main

import (
	"fmt"

	"hotline"
)

func main() {
	hc := hotline.NewHugeCTRPipeline()
	hl := hotline.NewHotlinePipeline()

	for _, cfg := range []hotline.DatasetConfig{hotline.SynM1(), hotline.SynM2()} {
		fmt.Printf("%s — %d sparse features, %.0f GB of embeddings\n",
			cfg.Name, cfg.NumTables, cfg.FullSizeGB)
		for _, nodes := range []int{1, 2, 4} {
			sys := hotline.PaperCluster(nodes)
			w := hotline.NewWorkload(cfg, 4096*nodes, sys)
			hcSt, hlSt := hc.Iteration(w), hl.Iteration(w)
			hbm := float64(int64(sys.TotalGPUs())*sys.GPU.HBMBytes) / (1 << 30)
			if hcSt.OOM {
				fmt.Printf("  %d node(s) (%2.0f GB HBM): HugeCTR OOM          Hotline %8s\n",
					nodes, hbm, hlSt.Total)
				continue
			}
			fmt.Printf("  %d node(s) (%2.0f GB HBM): HugeCTR %9s  Hotline %8s  (%.2fx)\n",
				nodes, hbm, hcSt.Total, hlSt.Total, hotline.Speedup(hcSt, hlSt))
		}
		fmt.Println()
	}
	fmt.Println("paper: 1.89x at 4 nodes by eliminating all-to-all; Hotline trains")
	fmt.Println("Terabyte-class models on a single GPU where GPU-only needs four.")
}
