// Async gather overlap and ownership placement on the sharded substrate:
// the Hotline executor prefetches the non-popular µ-batch's remote
// embedding rows so the fabric gather streams while the popular µ-batch
// computes, and row ownership can follow the request skew instead of blind
// round-robin. Training stays bit-identical in every mode — what changes,
// and what this example prints, is the measured traffic: how much gather
// wall time stayed exposed, and how many all-to-all bytes each placement
// moves.
//
//	go run ./examples/overlap
package main

import (
	"fmt"

	"hotline"
)

func main() {
	cfg := hotline.CriteoKaggle()
	cfg.Samples = 2048
	const iters, batch, seed, nodes = 10, 256, 42, 4

	// --- async overlap: synchronous vs prefetched gathers ---------------
	run := func(overlap bool) (*hotline.Model, hotline.OverlapStats) {
		svc := hotline.NewShardService(hotline.ShardConfig{
			Nodes:      nodes,
			CacheBytes: hotline.DefaultShardCacheBytes(cfg),
			RowBytes:   int64(cfg.EmbedDim) * 4,
		}, nil)
		tr := hotline.NewHotlineShardedTrainer(hotline.NewModel(cfg, seed), 0.1, svc)
		tr.OverlapGather = overlap
		tr.LearnSamples = 512
		gen := hotline.NewGenerator(cfg)
		for i := 0; i < iters; i++ {
			tr.Step(gen.NextBatch(batch))
		}
		return tr.M, svc.Gatherer().Stats()
	}
	syncM, syncStats := run(false)
	overM, overStats := run(true)

	fmt.Println("Async gather overlap (4 nodes, Criteo Kaggle):")
	fmt.Printf("  synchronous: %5d rows gathered inline, %8v exposed\n",
		syncStats.SyncRows, syncStats.SyncGather)
	fmt.Printf("  overlapped:  %5d rows prefetched,      %8v exposed (%v inline + %v await)\n",
		overStats.PrefetchRows, overStats.ExposedGather(),
		overStats.SyncGather, overStats.Exposed)
	parity := "bit-identical"
	if d := hotline.MaxModelStateDiff(syncM, overM); d != 0 {
		parity = fmt.Sprintf("DIVERGED %g", d)
	}
	fmt.Printf("  model state across modes: %s\n", parity)

	// --- ownership placement: who owns the popular rows ------------------
	fmt.Println("\nOwnership placement (4 nodes, cache at 1/8 hot budget):")
	full := hotline.CriteoKaggle()
	cache := hotline.DefaultShardCacheBytes(full) / 8
	for _, kind := range []hotline.ShardPlacementKind{
		hotline.PlaceRoundRobin, hotline.PlaceCapacity, hotline.PlaceHotAware,
	} {
		probe := hotline.ShardProbe{Nodes: nodes, CacheBytes: cache, Batch: 1024, Placement: kind}
		if kind == hotline.PlaceCapacity {
			// Ownership weights derive from real per-node HBM budgets.
			probe.HBMBytes = []int64{4 * cache, 2 * cache, 2 * cache, cache}
		}
		m := hotline.MeasureShard(full, probe)
		fmt.Printf("  %-18s local %5.1f%%  cache hit %5.1f%%  a2a %7.1f KB/iter\n",
			m.Placement, m.LocalFrac*100, m.HitRate*100, float64(m.A2ABytesPerIter)/1024)
	}
}
