// Transport fabric: the shard service's cross-node traffic behind a
// Transport seam. The default in-proc path moves rows through shared
// memory; this example swaps in the socket transport — every shard node a
// real NodeServer behind its own unix socket, speaking the length-prefixed
// binary framing — and trains the pipelined Hotline executor over it. The
// socket run must reproduce the in-proc run bit for bit (same losses, zero
// parameter divergence); what changes is that gather and scatter now have
// measured wall clock, reported next to the analytic all-to-all model the
// timing pipelines price.
//
// For real OS processes instead of in-process servers, see
// cmd/hotline-node and `hotline-bench -fabric unix`.
//
//	go run ./examples/fabric
package main

import (
	"fmt"
	"log"

	"hotline"
)

func main() {
	cfg := hotline.CriteoKaggle()
	const depth, iters, batch = 2, 6, 256

	fmt.Println("Transport fabric (Criteo Kaggle, depth-2 pipeline):")
	fmt.Printf("%-6s %-7s %16s %17s %12s %10s\n",
		"nodes", "fabric", "gather wall/iter", "scatter wall/iter", "a2a KB/iter", "max diff")
	for _, nodes := range []int{2, 4} {
		for _, network := range []string{"inproc", "unix"} {
			m, err := hotline.MeasureFabricDepth(cfg, nodes, depth, network, iters, batch)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6d %-7s %16s %17s %12.1f %10g\n",
				nodes, m.Fabric, m.GatherWallPerIter, m.ScatterWallPerIter,
				float64(m.A2ABytesPerIter)/1024, m.MaxStateDiff)
		}
	}
	fmt.Println("\nmax diff 0: the socket fabric trained bit-identically to the in-proc path;")
	fmt.Println("the wall columns are real kernel-crossing time the analytic model does not see.")
}
