// Depth-k prefetch pipeline: the Hotline executor stages up to k-1 future
// mini-batches — accelerator classification plus their non-popular fabric
// gathers — so up to k gather windows stream while earlier iterations
// finish. Staged rows that a later sparse update rewrites are delta-
// repaired before use, keeping every depth bit-identical to batch-by-batch
// stepping; the opt-in stale mode (ShardService.SetStaleReads) skips the
// repair and lets you measure what that staleness costs. This example
// sweeps k and prints the measured exposed-gather fraction and the repair
// traffic each depth pays.
//
//	go run ./examples/depth
package main

import (
	"fmt"

	"hotline"
)

func main() {
	cfg := hotline.CriteoKaggle()
	cfg.Samples = 2048
	const iters, batch, seed, nodes = 10, 256, 42, 4

	run := func(depth int, overlap, stale bool) (*hotline.Model, hotline.OverlapStats) {
		svc := hotline.NewShardService(hotline.ShardConfig{
			Nodes:      nodes,
			CacheBytes: hotline.DefaultShardCacheBytes(cfg),
			RowBytes:   int64(cfg.EmbedDim) * 4,
		}, nil)
		svc.SetStaleReads(stale)
		tr := hotline.NewHotlineShardedTrainer(hotline.NewModel(cfg, seed), 0.1, svc)
		tr.OverlapGather = overlap
		tr.Depth = depth
		tr.LearnSamples = 512
		gen := hotline.NewGenerator(cfg)
		batches := make([]*hotline.Batch, iters)
		for i := range batches {
			batches[i] = gen.NextBatch(batch)
		}
		for i := 0; i < iters; i++ {
			end := min(i+depth, iters)
			tr.StepLookahead(batches[i], batches[i+1:end])
		}
		return tr.M, svc.Gatherer().Stats()
	}

	refM, syncStats := run(1, false, false)
	fmt.Printf("Depth-k prefetch pipeline (%d nodes, Criteo Kaggle, sync gather %v):\n",
		nodes, syncStats.ExposedGather())
	for _, k := range []int{1, 2, 4, 8} {
		m, st := run(k, true, false)
		parity := "bit-identical"
		if d := hotline.MaxModelStateDiff(refM, m); d != 0 {
			parity = fmt.Sprintf("DIVERGED %g", d)
		}
		fmt.Printf("  k=%d  windows %3d  exposed %5.1f%%  repaired rows %4d (%5.1f KB)  %s\n",
			k, st.Windows, 100*frac(st, syncStats), st.RepairRows,
			float64(st.RepairBytes)/1024, parity)
	}

	// The stale ablation: skip the repair and measure the divergence.
	staleM, staleStats := run(8, true, true)
	fmt.Printf("  k=8 stale mode: %d rows served stale, max |Δw| %.3g vs exact training\n",
		staleStats.StaleRows, hotline.MaxModelStateDiff(refM, staleM))
}

// frac is the run's exposed share of the synchronous baseline.
func frac(overlap, sync hotline.OverlapStats) float64 {
	if sync.ExposedGather() <= 0 {
		return 0
	}
	f := float64(overlap.ExposedGather()) / float64(sync.ExposedGather())
	return min(f, 1)
}
