package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/pipeline"
	"hotline/internal/shard"
)

// fabricReadyTimeout bounds how long the coordinator waits for a spawned
// hotline-node worker to print its ready line.
const fabricReadyTimeout = 15 * time.Second

// runFabric is the multi-process coordinator mode: it spawns one real
// hotline-node OS process per shard node, dials the fabric, trains the
// pipelined Hotline executor over it, and prints the measured gather/
// scatter wall clock next to the analytic all-to-all model and the
// bit-parity evidence against the in-proc reference run.
//
// When the hotline-node binary cannot be found (e.g. under `go run`), the
// coordinator falls back to an in-process fabric — every node still sits
// behind its own socket and NodeServer, only the process boundary is
// missing — and says so.
func runFabric(network string, nodes, depth, iters int, timeouts shard.FabricTimeouts) {
	if network != "unix" && network != "tcp" {
		fmt.Fprintf(os.Stderr, "hotline-bench: -fabric must be unix or tcp, got %q\n", network)
		os.Exit(2)
	}
	if nodes < 2 {
		fmt.Fprintf(os.Stderr, "hotline-bench: -fabric-nodes must be >= 2, got %d\n", nodes)
		os.Exit(2)
	}
	const batch = 256

	tr, cleanup, mode := dialFabricWorkers(network, nodes, timeouts)
	defer cleanup()

	m, err := pipeline.MeasureFabricOver(data.CriteoKaggle(), nodes, depth, iters, batch, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotline-bench:", err)
		os.Exit(1)
	}
	sys := cost.PaperCluster(nodes)
	analytic := shard.Stats{Nodes: nodes, GatherBytes: m.A2ABytesPerIter}.AllToAllTime(sys)
	fmt.Printf("fabric:            %s (%s)\n", m.Fabric, mode)
	fmt.Printf("nodes x depth:     %d x %d (%d iters, batch %d)\n", m.Nodes, m.Depth, m.Iters, batch)
	fmt.Printf("gather wall/iter:  %s\n", m.GatherWallPerIter)
	fmt.Printf("scatter wall/iter: %s\n", m.ScatterWallPerIter)
	fmt.Printf("a2a KB/iter:       %.1f (analytic all-to-all %s)\n", float64(m.A2ABytesPerIter)/1024, analytic)
	fmt.Printf("final loss:        %v\n", m.FinalLoss)
	fmt.Printf("max state diff:    %g vs in-proc reference", m.MaxStateDiff)
	if m.MaxStateDiff == 0 {
		fmt.Printf(" (bit-identical)")
	}
	fmt.Println()
}

// dialFabricWorkers connects a transport whose peers are real hotline-node
// processes, or an in-process fabric when the worker binary is missing.
// The returned cleanup tears down whichever was built.
func dialFabricWorkers(network string, nodes int, timeouts shard.FabricTimeouts) (shard.Transport, func(), string) {
	bin, err := findNodeBinary()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hotline-bench: %v; falling back to in-process node servers\n", err)
		fab, ferr := shard.StartLocalFabric(nodes, network, timeouts.IO, nil)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "hotline-bench:", ferr)
			os.Exit(1)
		}
		return fab.Transport, func() { fab.Close() }, "in-process fallback"
	}

	dir, err := os.MkdirTemp("", "hlfab")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotline-bench:", err)
		os.Exit(1)
	}
	procs := make([]*exec.Cmd, 0, nodes)
	addrs := make([]string, 0, nodes)
	cleanup := func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Signal(syscall.SIGTERM)
			}
		}
		for _, p := range procs {
			p.Wait()
		}
		os.RemoveAll(dir)
	}
	for i := 0; i < nodes; i++ {
		listen := filepath.Join(dir, fmt.Sprintf("node%d.sock", i))
		if network == "tcp" {
			listen = "127.0.0.1:0"
		}
		cmd := exec.Command(bin, "-node", fmt.Sprint(i), "-network", network, "-listen", listen,
			"-io-timeout", timeouts.IO.String())
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err == nil {
			err = cmd.Start()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotline-bench: spawn hotline-node:", err)
			cleanup()
			os.Exit(1)
		}
		procs = append(procs, cmd)
		addr, err := awaitReady(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hotline-bench: node %d: %v\n", i, err)
			cleanup()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hotline-bench: node %d ready on %s %s (pid %d)\n", i, network, addr, cmd.Process.Pid)
		addrs = append(addrs, addr)
	}
	tr, err := shard.DialFabric(shard.FabricConfig{Network: network, Addrs: addrs, Timeouts: timeouts})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotline-bench: dial fabric:", err)
		cleanup()
		os.Exit(1)
	}
	full := func() {
		tr.Close()
		cleanup()
	}
	return tr, full, fmt.Sprintf("%d worker processes", nodes)
}

// findNodeBinary locates hotline-node next to this executable or on PATH.
func findNodeBinary() (string, error) {
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "hotline-node")
		if info, err := os.Stat(cand); err == nil && !info.IsDir() {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("hotline-node"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("hotline-node binary not found next to hotline-bench or on PATH")
}

// awaitReady scans a worker's stdout for its ready line and returns the
// listen address it reports (TCP workers on port 0 report the real port).
func awaitReady(out interface{ Read([]byte) (int, error) }) (string, error) {
	type res struct {
		addr string
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, " ready on "); i >= 0 && strings.HasPrefix(line, "hotline-node:") {
				fields := strings.Fields(line[i:])
				ch <- res{addr: fields[len(fields)-1]}
				return
			}
		}
		err := sc.Err()
		if err == nil {
			err = fmt.Errorf("worker exited before its ready line")
		}
		ch <- res{err: err}
	}()
	select {
	case r := <-ch:
		return r.addr, r.err
	case <-time.After(fabricReadyTimeout):
		return "", fmt.Errorf("worker not ready after %s", fabricReadyTimeout)
	}
}
