// Command hotline-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hotline-bench -exp fig19        # one experiment
//	hotline-bench -exp all          # everything, in order
//	hotline-bench -list             # list experiment ids
//	hotline-bench -exp fig18 -iters 200   # longer functional training
package main

import (
	"flag"
	"fmt"
	"os"

	"hotline"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (e.g. fig19, tab5) or 'all'")
	iters := flag.Int("iters", 40, "functional-training iterations for fig18/tab5")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, id := range hotline.Experiments() {
			fmt.Printf("%-6s %s\n", id, hotline.ExperimentTitle(id))
		}
		return
	}
	hotline.SetExperimentTrainIters(*iters)

	ids := []string{*exp}
	if *exp == "all" {
		ids = hotline.Experiments()
	}
	for _, id := range ids {
		tab, err := hotline.RunExperiment(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotline-bench:", err)
			os.Exit(1)
		}
		fmt.Println(tab.Render())
	}
}
