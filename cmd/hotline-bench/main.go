// Command hotline-bench regenerates the paper's tables and figures, the
// design-choice ablations (abl-*), and the multi-node sharded-embedding
// scenarios (mn-*: node-count scaling, cache-size ablation, evolving skew,
// eviction policy — all measured against real shard and cache state).
//
// Experiments fan out over a bounded worker pool (one worker per core by
// default) and the tables print in stable id order; -json additionally
// emits a machine-readable sweep report with wall time, per-experiment
// durations and row counts.
//
// Usage:
//
//	hotline-bench -exp fig19              # one experiment
//	hotline-bench -exp mn-scale,mn-cache  # multi-node sharding scenarios
//	hotline-bench -exp all                # everything, concurrently
//	hotline-bench -exp all -workers 1     # serial baseline for comparison
//	hotline-bench -list                   # list experiment ids
//	hotline-bench -exp fig18 -iters 200   # longer functional training
//	hotline-bench -exp all -json report.json -quiet
//	hotline-bench -exp mn-depth           # prefetch depth sweep (exposure vs repair)
//	hotline-bench -exp mn-scale -depth 4  # scenarios at pipeline depth 4
//	hotline-bench -smoke                  # fast CI smoke sweep
//	hotline-bench -fabric unix            # train over real hotline-node processes
//	hotline-bench -fabric tcp -fabric-nodes 4
//	                                      # ... 4 workers over loopback TCP
//	hotline-bench -bench                  # micro-benchmarks -> BENCH_<date>.json
//	hotline-bench -bench -bench-out -     # ... to stdout
//	hotline-bench -bench -bench-baseline bench/BENCH_2026-07-30_seed.json
//	                                      # diff vs a snapshot; >10% train-step
//	                                      # regression fails the run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hotline"
	"hotline/internal/shard"
	"hotline/internal/tools/microbench"
)

// experimentReport is one sweep entry of the JSON report.
type experimentReport struct {
	ID         string  `json:"id"`
	Title      string  `json:"title"`
	Rows       int     `json:"rows"`
	DurationMS float64 `json:"duration_ms"`
	Error      string  `json:"error,omitempty"`
}

// sweepReport is the machine-readable output of -json.
type sweepReport struct {
	Workers     int                `json:"workers"`
	Parallelism int                `json:"parallelism"`
	Experiments int                `json:"experiments"`
	Failed      int                `json:"failed"`
	WallMS      float64            `json:"wall_ms"`
	Results     []experimentReport `json:"results"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id (e.g. fig19, tab5), comma-separated ids, or 'all'")
	iters := flag.Int("iters", 40, "functional-training iterations for fig18/tab5")
	list := flag.Bool("list", false, "list available experiments and exit")
	workers := flag.Int("workers", 0, "experiment sweep workers (0 = NumCPU)")
	parallel := flag.Int("par", -1, "intra-experiment kernel workers (0 = NumCPU; -1 = auto: NumCPU for a single experiment, 1 while sweeping several to avoid oversubscription)")
	jsonPath := flag.String("json", "", "write a JSON sweep report to this file ('-' = stdout)")
	quiet := flag.Bool("quiet", false, "suppress table rendering (summary/JSON only)")
	smoke := flag.Bool("smoke", false, "CI smoke mode: shortest functional training")
	depth := flag.Int("depth", 0, "prefetch pipeline depth k for executors and the -bench report (0 = keep default, currently 2; see mn-depth for the sweep)")
	fabric := flag.String("fabric", "", `multi-process coordinator mode: train over real hotline-node worker processes on this socket family ("unix" or "tcp") and report measured vs analytic all-to-all time`)
	fabricNodes := flag.Int("fabric-nodes", 2, "shard node count for -fabric")
	fabricIters := flag.Int("fabric-iters", 6, "training iterations for -fabric")
	fabricDial := flag.Duration("fabric-dial", shard.DefaultDialTimeout, "per-peer dial timeout for -fabric")
	fabricIO := flag.Duration("fabric-io", shard.DefaultIOTimeout, "per-operation read/write deadline for -fabric (also the workers' -io-timeout)")
	fabricRetry := flag.Duration("fabric-retry", shard.DefaultRetryTimeout, "recovery budget one peer re-dial loop may spend for -fabric")
	bench := flag.Bool("bench", false, "run the micro-benchmarks and emit BENCH_<date>.json")
	benchOut := flag.String("bench-out", "", "micro-benchmark output path (default BENCH_<date>.json; '-' = stdout)")
	benchLabel := flag.String("bench-label", "", "label recorded in the benchmark report")
	benchBaseline := flag.String("bench-baseline", "", "diff the -bench report against this BENCH json and fail on train-step regressions")
	benchMaxRegress := flag.Float64("bench-max-regress", 0.10, "max allowed fractional ns/op regression vs -bench-baseline")
	flag.Parse()

	if *depth > 0 {
		hotline.PipelineDepth(*depth)
	}
	if *bench {
		runMicrobench(*benchOut, *benchLabel, *parallel, *benchBaseline, *benchMaxRegress)
		return
	}
	if *fabric != "" {
		timeouts := shard.FabricTimeouts{Dial: *fabricDial, IO: *fabricIO, Retry: *fabricRetry}
		if err := timeouts.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "hotline-bench:", err)
			os.Exit(2)
		}
		runFabric(*fabric, *fabricNodes, *depth, *fabricIters, timeouts)
		return
	}

	if *list {
		for _, id := range hotline.Experiments() {
			fmt.Printf("%-6s %s\n", id, hotline.ExperimentTitle(id))
		}
		return
	}
	if *smoke {
		// Shortest functional training, unless -iters was given explicitly.
		itersSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "iters" {
				itersSet = true
			}
		})
		if !itersSet {
			*iters = 6
		}
	}
	hotline.SetExperimentTrainIters(*iters)

	var ids []string
	if *exp == "all" {
		ids = hotline.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "hotline-bench: no experiment ids given (see -list)")
		os.Exit(2)
	}

	sweepWorkers := hotline.EffectiveSweepWorkers(*workers, len(ids))
	switch {
	case *parallel >= 0:
		hotline.Parallelism(*parallel)
	case sweepWorkers > 1:
		// The sweep already saturates the cores with whole experiments;
		// per-kernel sharding on top would oversubscribe NumCPU^2-style.
		hotline.Parallelism(1)
	default:
		hotline.Parallelism(0)
	}

	start := time.Now()
	results := hotline.SweepExperiments(context.Background(), ids, *workers)
	wall := time.Since(start)

	rep := sweepReport{
		Workers:     sweepWorkers,
		Parallelism: hotline.NumWorkers(),
		Experiments: len(results),
		WallMS:      float64(wall.Microseconds()) / 1e3,
	}
	failed := false
	for _, r := range results {
		er := experimentReport{
			ID:         r.ID,
			Title:      r.Title,
			DurationMS: float64(r.Duration.Microseconds()) / 1e3,
		}
		if r.Err != nil {
			er.Error = r.Err.Error()
			rep.Failed++
			failed = true
			fmt.Fprintf(os.Stderr, "hotline-bench: %s: %v\n", r.ID, r.Err)
		} else {
			er.Rows = len(r.Table.Rows)
			if !*quiet {
				fmt.Println(r.Table.Render())
			}
		}
		rep.Results = append(rep.Results, er)
	}
	fmt.Fprintf(os.Stderr, "hotline-bench: %d experiment(s), %d worker(s), wall %s\n",
		len(results), rep.Workers, wall.Round(time.Millisecond))

	if *jsonPath != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotline-bench:", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hotline-bench:", err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runMicrobench executes the shared micro-benchmark targets (the same code
// `go test -bench` runs), writes the machine-readable trajectory file and —
// when a baseline report is given — fails on train-step regressions.
func runMicrobench(outPath, label string, parallel int, baselinePath string, maxRegress float64) {
	if parallel >= 0 {
		hotline.Parallelism(parallel)
	} else {
		hotline.Parallelism(1) // benchmarks record the serial steady state
	}
	rep := microbench.Run(label, time.Now())
	rep.Parallelism = hotline.NumWorkers()
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %8d B/op %6d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	out, err := rep.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotline-bench:", err)
		os.Exit(1)
	}
	if outPath == "" {
		outPath = "BENCH_" + rep.Date + ".json"
	}
	if outPath == "-" {
		os.Stdout.Write(out)
	} else if err := os.WriteFile(outPath, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hotline-bench:", err)
		os.Exit(1)
	} else {
		fmt.Fprintf(os.Stderr, "hotline-bench: wrote %s\n", outPath)
	}
	if baselinePath != "" && !diffBench(rep, baselinePath, maxRegress) {
		os.Exit(1)
	}
}

// benchGates are the targets the baseline diff enforces: the end-to-end
// training-step costs the tentpole optimisations are judged on. Other
// targets (and targets the baseline predates) are reported but never fail
// the diff, so new benchmarks can land before the snapshot is refreshed.
var benchGates = map[string]bool{
	"HotlineTrainStep":          true,
	"HotlineTrainStepPipelined": true,
}

// benchAnchor is the machine-speed calibration target: a pure arithmetic
// kernel whose ns/op tracks the host CPU but is untouched by training-path
// changes. Comparing a snapshot recorded on one machine against a run on
// another (the CI runner vs the dev container) in raw ns/op would gate on
// hardware, not code; scaling the baseline by the anchor's ratio first
// cancels the machine difference to first order.
const benchAnchor = "ZipfSample"

// diffBench compares a fresh report against a checked-in baseline snapshot
// and reports whether every gated target stayed within maxRegress of its
// machine-normalised baseline ns/op.
func diffBench(rep microbench.Report, baselinePath string, maxRegress float64) bool {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotline-bench:", err)
		return false
	}
	var base microbench.Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "hotline-bench: %s: %v\n", baselinePath, err)
		return false
	}
	baseNs := make(map[string]float64, len(base.Results))
	for _, r := range base.Results {
		baseNs[r.Name] = r.NsPerOp
	}
	scale := 1.0
	for _, r := range rep.Results {
		if r.Name == benchAnchor && baseNs[benchAnchor] > 0 && r.NsPerOp > 0 {
			scale = r.NsPerOp / baseNs[benchAnchor]
			fmt.Fprintf(os.Stderr, "hotline-bench: vs %s: machine scale %.2fx (%s)\n",
				baselinePath, scale, benchAnchor)
		}
	}
	ok := true
	for _, r := range rep.Results {
		b, have := baseNs[r.Name]
		if !have || b <= 0 {
			continue
		}
		ratio := r.NsPerOp/(b*scale) - 1
		verdict := "ok"
		if benchGates[r.Name] && ratio > maxRegress {
			verdict = fmt.Sprintf("REGRESSION > %.0f%%", maxRegress*100)
			ok = false
		}
		fmt.Fprintf(os.Stderr, "hotline-bench: vs %s: %-28s %+7.1f%%  %s\n",
			baselinePath, r.Name, ratio*100, verdict)
	}
	return ok
}
