// Command hotline-datagen inspects the synthetic dataset generators:
// per-dataset shapes, access skew, popular-input fractions and day drift.
//
// Usage:
//
//	hotline-datagen                      # summary of all datasets
//	hotline-datagen -dataset RM3 -day 3  # one dataset at a drifted day
package main

import (
	"flag"
	"fmt"
	"os"

	"hotline"
)

func main() {
	dataset := flag.String("dataset", "", "dataset name or RM id (empty = all)")
	day := flag.Int("day", 0, "simulated day (popularity drift)")
	samples := flag.Int("samples", 2048, "samples to profile")
	flag.Parse()

	cfgs := hotline.Datasets()
	if *dataset != "" {
		cfg, err := hotline.DatasetByName(*dataset)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotline-datagen:", err)
			os.Exit(1)
		}
		cfgs = []hotline.DatasetConfig{cfg}
	}

	for _, cfg := range cfgs {
		gen := hotline.NewGenerator(cfg)
		gen.SetDay(*day)
		b := gen.NextBatch(*samples)
		positives := 0
		lookups := 0
		for i, l := range b.Labels {
			if l == 1 {
				positives++
			}
			for t := range b.Sparse {
				lookups += len(b.Sparse[t][i])
			}
		}
		fmt.Printf("%s (%s) day %d\n", cfg.Name, cfg.RM, *day)
		fmt.Printf("  dense features     %d\n", cfg.DenseFeatures)
		fmt.Printf("  sparse features    %d (dim %d)\n", cfg.NumTables, cfg.EmbedDim)
		fmt.Printf("  rows full/scaled   %d / %d (scale %dx)\n",
			cfg.TotalFullRows(), cfg.TotalScaledRows(), cfg.ScaleFactor)
		fmt.Printf("  embedding bytes    %.2f GB full\n", float64(cfg.FullEmbeddingBytes())/(1<<30))
		fmt.Printf("  zipf s             %.2f\n", cfg.ZipfS)
		fmt.Printf("  lookups/sample     %.1f\n", float64(lookups)/float64(*samples))
		fmt.Printf("  positive labels    %.1f%%\n", 100*float64(positives)/float64(*samples))
		fmt.Println()
	}
}
