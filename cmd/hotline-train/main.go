// Command hotline-train trains a recommendation model on a synthetic
// dataset with either the baseline executor or the Hotline µ-batch
// executor, reporting the loss and AUC trajectory.
//
// Usage:
//
//	hotline-train -dataset "Criteo Kaggle" -executor hotline -iters 100
//	hotline-train -dataset RM1 -executor baseline -batch 128
//	hotline-train -dataset RM2 -parity            # run both, compare
package main

import (
	"flag"
	"fmt"
	"os"

	"hotline"
)

func main() {
	dataset := flag.String("dataset", "Criteo Kaggle", "dataset name or RM id")
	executor := flag.String("executor", "hotline", "baseline | hotline")
	batch := flag.Int("batch", 64, "mini-batch size")
	iters := flag.Int("iters", 60, "training iterations")
	lr := flag.Float64("lr", 0.1, "learning rate")
	seed := flag.Uint64("seed", 42, "model init seed")
	parity := flag.Bool("parity", false, "train both executors and compare (Table V)")
	parallel := flag.Int("par", 0, "training kernel workers (0 = NumCPU); results are bit-identical for any value")
	flag.Parse()

	hotline.Parallelism(*parallel)
	cfg, err := hotline.DatasetByName(*dataset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotline-train:", err)
		os.Exit(1)
	}

	run := hotline.TrainRunConfig{BatchSize: *batch, Iters: *iters, EvalEvery: *iters / 5, EvalSize: 1024}

	if *parity {
		rep := hotline.RunParity(cfg, *seed, run)
		fmt.Printf("parity on %s after %d iterations:\n  %v\n", cfg.Name, *iters, rep)
		return
	}

	m := hotline.NewModel(cfg, *seed)
	var tr hotline.Trainer
	switch *executor {
	case "baseline":
		tr = hotline.NewBaselineTrainer(m, float32(*lr))
	case "hotline":
		tr = hotline.NewHotlineTrainer(m, float32(*lr))
	default:
		fmt.Fprintf(os.Stderr, "hotline-train: unknown executor %q\n", *executor)
		os.Exit(1)
	}

	fmt.Printf("training %s (%s) with the %s executor, batch %d, lr %g\n",
		cfg.Name, cfg.RM, tr.Name(), *batch, *lr)
	curve := hotline.RunTraining(tr, hotline.NewGenerator(cfg), run)
	for _, p := range curve {
		fmt.Printf("iter %4d  loss %.4f  %v\n", p.Iteration, p.Loss, p.Metrics)
	}
	if ht, ok := tr.(interface{ PopularFraction() float64 }); ok {
		fmt.Printf("popular inputs: %.1f%%\n", ht.PopularFraction()*100)
	}
}
