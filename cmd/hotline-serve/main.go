// Command hotline-serve runs the online serving stack under request load:
// a sharded model behind predict replicas, a Zipf/drifting request corpus,
// and the open-loop load harness reporting throughput and exact latency
// percentiles. Optionally it trains concurrently on the same weights
// (-train), exercising the mixed train+serve path the parity tests pin
// down, or sweeps the offered rate to find the saturation knee (-sweep).
//
// Usage:
//
//	hotline-serve -qps 500 -requests 256                 # one load run
//	hotline-serve -dataset RM1 -qps 200 -players 4
//	hotline-serve -sweep 100,200,400,800 -budget 20ms    # knee sweep
//	hotline-serve -qps 300 -train                        # mixed train+serve
//	hotline-serve -qps 100 -requests 32 -quiet           # CI smoke
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hotline"
)

func main() {
	dataset := flag.String("dataset", "Criteo Kaggle", "dataset name or RM id")
	nodes := flag.Int("nodes", 4, "shard service node count")
	replicas := flag.Int("replicas", 2, "predict replicas (weight-sharing shadows)")
	qps := flag.Float64("qps", 100, "target request rate (open-loop schedule)")
	requests := flag.Int("requests", 128, "requests to play (corpus wraps if shorter)")
	players := flag.Int("players", 2, "parallel request players")
	reqBatch := flag.Int("req-batch", 32, "samples per request")
	days := flag.Int("days", 2, "drift days in the request corpus")
	perDay := flag.Int("per-day", 32, "corpus request batches per day")
	seed := flag.Uint64("seed", 42, "model init seed")
	doTrain := flag.Bool("train", false, "train concurrently on the same weights while serving")
	lr := flag.Float64("lr", 0.1, "learning rate for -train")
	sweep := flag.String("sweep", "", "comma-separated QPS grid: saturation sweep instead of a single run")
	budget := flag.Duration("budget", 20*time.Millisecond, "p99 latency budget for the sweep's knee")
	parallel := flag.Int("par", 0, "kernel workers (0 = NumCPU)")
	quiet := flag.Bool("quiet", false, "suppress per-run detail (summary line only)")
	flag.Parse()

	hotline.Parallelism(*parallel)
	cfg, err := hotline.DatasetByName(*dataset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotline-serve:", err)
		os.Exit(1)
	}

	m := hotline.NewModel(cfg, *seed)
	svc := hotline.NewShardService(hotline.ShardConfig{
		Nodes: *nodes, CacheBytes: 1 << 20, RowBytes: int64(cfg.EmbedDim) * 4,
	}, nil)
	// The sharded trainer shards the model itself; serve-only runs shard here.
	var tr hotline.Trainer
	if *doTrain {
		tr = hotline.NewHotlineShardedTrainer(m, float32(*lr), svc)
	} else {
		m.ShardEmbeddings(svc)
	}
	srv := hotline.NewServer(m, *replicas)
	corpus := hotline.BuildServeCorpus(cfg, *days, *perDay, *reqBatch)

	if !*quiet {
		fmt.Printf("serving %s (%s): %d nodes, %d replicas, corpus %d requests x %d samples over %d days\n",
			cfg.Name, cfg.RM, *nodes, *replicas, corpus.Len(), *reqBatch, *days)
	}

	if *sweep != "" {
		var rates []float64
		for _, s := range strings.Split(*sweep, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || r <= 0 {
				fmt.Fprintf(os.Stderr, "hotline-serve: bad sweep rate %q\n", s)
				os.Exit(1)
			}
			rates = append(rates, r)
		}
		points := hotline.SaturationSweep(srv, corpus, rates,
			hotline.LoadConfig{Requests: *requests, Players: *players})
		knee := hotline.LoadKnee(points, *budget)
		for i, p := range points {
			mark := ""
			if i == knee {
				mark = "  <- knee"
			}
			fmt.Printf("qps %6.0f  achieved %6.0f  p50 %-10v p99 %-10v p999 %-10v%s\n",
				p.QPS, p.Report.Throughput,
				p.Report.Latency.P50.Round(time.Microsecond),
				p.Report.Latency.P99.Round(time.Microsecond),
				p.Report.Latency.P999.Round(time.Microsecond), mark)
		}
		if knee < 0 {
			fmt.Printf("no rate met the %v p99 budget\n", *budget)
		}
		return
	}

	stop := make(chan struct{})
	trained := make(chan int)
	if *doTrain {
		gen := hotline.NewGenerator(cfg)
		go func() {
			steps := 0
			for {
				select {
				case <-stop:
					trained <- steps
					return
				default:
				}
				b := gen.NextBatch(64)
				srv.Train(func() { tr.Step(b) })
				steps++
			}
		}()
	}

	rep := hotline.RunLoad(srv, corpus, hotline.LoadConfig{
		QPS: *qps, Requests: *requests, Players: *players,
	})
	if *doTrain {
		close(stop)
		fmt.Printf("trained %d steps while serving\n", <-trained)
	}

	fmt.Printf("played %d requests (%d samples) in %v: %.0f req/s\n",
		rep.Requests, rep.Samples, rep.Wall.Round(time.Millisecond), rep.Throughput)
	fmt.Printf("latency p50 %v  p90 %v  p99 %v  p999 %v  (min %v max %v)\n",
		rep.Latency.P50.Round(time.Microsecond), rep.Latency.P90.Round(time.Microsecond),
		rep.Latency.P99.Round(time.Microsecond), rep.Latency.P999.Round(time.Microsecond),
		rep.Latency.Min.Round(time.Microsecond), rep.Latency.Max.Round(time.Microsecond))
	if !*quiet {
		sv := svc.ServeSnapshot()
		fmt.Printf("serve traffic: %.1f%% cache hit, %.1f%% gathered, %.1f KB gathered/request\n",
			100*sv.HitRate(), 100*sv.GatherFrac(),
			float64(sv.GatherBytes)/float64(rep.Requests)/1024)
	}
}
