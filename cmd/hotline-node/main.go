// Command hotline-node runs one shard node of the multi-process training
// fabric: a NodeServer that holds the authoritative copy of the embedding
// rows its node owns and answers the coordinator's framed fetch/push
// requests over a unix or TCP socket.
//
// The coordinator (hotline-bench -fabric, or any program dialing
// shard.DialFabric) connects one socket per node and streams gather
// fetches and pre-reduced scatter updates through it; this process stays
// up until it is signalled (SIGINT/SIGTERM) or its listener is closed.
//
// Usage:
//
//	hotline-node -node 1 -network unix -listen /tmp/hotline-fabric/node1.sock
//	hotline-node -node 0 -network tcp  -listen 127.0.0.1:0
//
// On startup the node prints one line the coordinator can parse:
//
//	hotline-node: node 1 ready on unix /tmp/hotline-fabric/node1.sock
//
// (with -listen 127.0.0.1:0 the printed TCP address carries the actual
// port the kernel assigned). On shutdown it prints the traffic it served:
//
//	hotline-node: node 1 done: 310 fetch frames, 152 push frames, 12040 rows served, 8216 rows held
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"hotline/internal/shard"
)

func main() {
	node := flag.Int("node", 0, "this node's id in the fabric (owner index)")
	network := flag.String("network", "unix", `socket family: "unix" or "tcp"`)
	listen := flag.String("listen", "", "address to listen on (unix socket path, or host:port; port 0 picks a free port)")
	ioTimeout := flag.Duration("io-timeout", shard.DefaultIOTimeout,
		"per-frame IO deadline: reading a started request's payload and writing its reply must each finish within this (0 = unbounded; idle waits between requests are never bounded)")
	flag.Parse()

	if *listen == "" {
		fmt.Fprintln(os.Stderr, "hotline-node: -listen is required")
		os.Exit(2)
	}
	if *ioTimeout < 0 {
		fmt.Fprintf(os.Stderr, "hotline-node: -io-timeout must be >= 0, got %s\n", *ioTimeout)
		os.Exit(2)
	}
	srv, err := shard.ServeNodeTimeout(*node, *network, *listen, *ioTimeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotline-node:", err)
		os.Exit(1)
	}
	fmt.Printf("hotline-node: node %d ready on %s %s\n", srv.Node(), *network, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hotline-node:", err)
	}
	st := srv.Stats()
	fmt.Printf("hotline-node: node %d done: %d fetch frames, %d push frames, %d rows served, %d rows held\n",
		st.Node, st.FetchFrames, st.PushFrames, st.RowsServed, st.RowsHeld)
}
