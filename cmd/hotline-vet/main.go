// Command hotline-vet machine-checks the repo's static contracts: the
// multichecker over the internal/analysis suite (hotalloc, detorder,
// markdirty, statslock, wraperr). It type-checks every module package
// from source, runs all analyzers, prints each diagnostic go-vet style
// and exits 1 if any survive their //hotline:allow suppressions — the CI
// gate next to gofmt/vet/race.
//
// Usage:
//
//	go run ./cmd/hotline-vet ./...
//
// The package pattern argument is accepted for familiarity but the suite
// always analyses the whole module: contracts are repo-wide (a hot-path
// annotation in tensor is only as strong as its callers in train).
package main

import (
	"flag"
	"fmt"
	"os"

	"hotline/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "module root to analyse")
	list := flag.Bool("help-analyzers", false, "print the analyzer contracts and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	diags, err := analysis.Vet(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotline-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hotline-vet: %d contract violation(s)\n", len(diags))
		os.Exit(1)
	}
}
