// Race harness: exercises every concurrency surface of the public API —
// the experiment sweep, parallel training, and shared Generator / Workload
// use — so `go test -race` proves the engine is data-race free.
package hotline_test

import (
	"context"
	"sync"
	"testing"

	"hotline"
	"hotline/internal/cost"
	"hotline/internal/data"
	"hotline/internal/pipeline"
)

// raceSweepIDs is a small mixed id set: ISA + analytic timing figures plus
// one functional-training experiment, enough to drive every substrate
// concurrently without a long wall time.
var raceSweepIDs = []string{"tab1", "tab2", "fig19", "fig25", "fig26", "fig6"}

func TestRunAllExperimentsRace(t *testing.T) {
	prev := hotline.Parallelism(4)
	defer hotline.Parallelism(prev)
	tables, err := hotline.RunAllExperiments(context.Background(), raceSweepIDs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(raceSweepIDs) {
		t.Fatalf("got %d tables, want %d", len(tables), len(raceSweepIDs))
	}
}

func TestParallelTrainStepRace(t *testing.T) {
	prev := hotline.Parallelism(4)
	defer hotline.Parallelism(prev)
	cfg := hotline.CriteoKaggle()
	cfg.BotMLP = []int{13, 64, 16}
	cfg.TopMLP = []int{64, 1}

	m := hotline.NewModel(cfg, 1)
	gen := hotline.NewGenerator(cfg)
	for i := 0; i < 3; i++ {
		m.TrainStep(gen.NextBatch(128), 0.1)
	}

	hot := hotline.NewHotlineTrainer(hotline.NewModel(cfg, 2), 0.1)
	for i := 0; i < 3; i++ {
		hot.Step(gen.NextBatch(128))
	}
}

func TestConcurrentGeneratorRace(t *testing.T) {
	cfg := hotline.CriteoKaggle()
	gen := hotline.NewGenerator(cfg)
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				b := gen.NextBatch(64)
				if b.Size() != 64 {
					t.Errorf("batch size %d", b.Size())
				}
			}
		}()
	}
	wg.Wait()
}

func TestConcurrentWorkloadRace(t *testing.T) {
	cfg := data.TaobaoAlibaba()
	var wg sync.WaitGroup
	pipes := pipeline.All() // shared across goroutines: Iteration must be pure
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(gpus int) {
			defer wg.Done()
			w := pipeline.NewWorkload(cfg, 1024*gpus, cost.PaperSystem(gpus))
			for _, p := range pipes {
				st := p.Iteration(w)
				if !st.OOM && st.Total <= 0 {
					t.Errorf("%s: non-positive iteration time", p.Name())
				}
			}
		}(1 + k%4)
	}
	wg.Wait()
}
